package fabric

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"rhythm/internal/cluster"
	"rhythm/internal/service"
	"rhythm/internal/simt"
)

// frameWriter is the coalescing writer both ends of the wire share: an
// in-process frame queue drained by one goroutine into a buffered
// write, flushed only when the queue runs dry. A burst of pipelined
// frames costs one syscall.
type frameWriter struct {
	conn    net.Conn
	ch      chan []byte
	closeCh chan struct{}
	onErr   func()
}

func startFrameWriter(conn net.Conn, closeCh chan struct{}, onErr func()) *frameWriter {
	w := &frameWriter{
		conn:    conn,
		ch:      make(chan []byte, tcpWriteQueue),
		closeCh: closeCh,
		onErr:   onErr,
	}
	go w.loop()
	return w
}

// enqueue queues one encoded frame, blocking when the queue is full
// (link backpressure). Reports false when the connection is closed.
func (w *frameWriter) enqueue(frame []byte) bool {
	select {
	case <-w.closeCh:
		return false
	default:
	}
	select {
	case w.ch <- frame:
		return true
	case <-w.closeCh:
		return false
	}
}

func (w *frameWriter) loop() {
	bw := bufio.NewWriterSize(w.conn, 256<<10)
	for {
		var frame []byte
		select {
		case frame = <-w.ch:
		case <-w.closeCh:
			return
		}
		for frame != nil {
			if _, err := bw.Write(frame); err != nil {
				w.onErr()
				return
			}
			select {
			case frame = <-w.ch:
			default:
				frame = nil
			}
		}
		if err := bw.Flush(); err != nil {
			w.onErr()
			return
		}
	}
}

// WorkerConfig sizes one device node hosted by `rhythmd -worker`.
type WorkerConfig struct {
	// Registry must be built identically to the frontend's — same
	// workloads in the same registration order. The hello fingerprint
	// enforces it at dial time.
	Registry *service.Registry
	// Devices is this node's modeled device count.
	Devices int
	// Groups is the GLOBAL shard-group table size shared by every node
	// in the fabric (default: Devices). All workers must agree.
	Groups int
	// Remaining geometry mirrors cluster.Config.
	CohortSize            int
	SlotsPerDevice        int
	QueueDepth            int
	SessionBuckets        int
	SessionNodesPerBucket int
	Simt                  simt.Config
	Faults                *cluster.FaultPlan
	MaxAttempts           int
}

// Worker hosts one fabric node: a cluster of modeled devices behind a
// listener speaking the wire protocol. Many frontends may connect; each
// connection is independently multiplexed.
type Worker struct {
	cl *cluster.Cluster

	ln     net.Listener
	closed atomic.Bool

	peerMu sync.Mutex
	peers  map[*workerPeer]struct{}

	// qmu orders quiesce against dispatch admission: a dispatch holds it
	// shared while checking the flag and joining inflight, so Quiesce's
	// Wait can never race a concurrent Add from zero.
	qmu         sync.RWMutex
	quiescing   bool
	quiesceOnce sync.Once
	inflight    sync.WaitGroup
}

// NewWorker builds the node's device cluster. The cluster starts
// immediately; units arrive once Listen+Serve run.
func NewWorker(cfg WorkerConfig) *Worker {
	cl := cluster.New(cluster.Config{
		Registry:              cfg.Registry,
		Devices:               cfg.Devices,
		Groups:                cfg.Groups,
		CohortSize:            cfg.CohortSize,
		SlotsPerDevice:        cfg.SlotsPerDevice,
		QueueDepth:            cfg.QueueDepth,
		SessionBuckets:        cfg.SessionBuckets,
		SessionNodesPerBucket: cfg.SessionNodesPerBucket,
		Simt:                  cfg.Simt,
		Faults:                cfg.Faults,
		MaxAttempts:           cfg.MaxAttempts,
	})
	return &Worker{
		cl:    cl,
		peers: make(map[*workerPeer]struct{}),
	}
}

// Cluster exposes the node's device pool (write hooks in tests, stats
// in the worker's own process).
func (w *Worker) Cluster() *cluster.Cluster { return w.cl }

// Listen binds the worker's listener ("host:port"; ":0" for ephemeral).
func (w *Worker) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	w.ln = ln
	return nil
}

// Addr reports the bound listen address.
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Serve accepts frontend connections until the listener closes. Returns
// nil on a Close()-initiated shutdown.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			if w.closed.Load() {
				return nil
			}
			return err
		}
		go w.serveConn(conn)
	}
}

// workerPeer is one frontend connection on the worker side.
type workerPeer struct {
	conn      net.Conn
	closeCh   chan struct{}
	closeOnce sync.Once
	fw        *frameWriter
}

func (p *workerPeer) shutdown() {
	p.closeOnce.Do(func() {
		close(p.closeCh)
		p.conn.Close()
	})
}

func (p *workerPeer) nack(id uint64, reason byte) {
	p.fw.enqueue(appendFrame(nil, frameNack, encodeNack(nackMsg{ID: id, Reason: reason})))
}

func (w *Worker) serveConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := &workerPeer{conn: conn, closeCh: make(chan struct{})}
	p.fw = startFrameWriter(conn, p.closeCh, p.shutdown)
	w.peerMu.Lock()
	w.peers[p] = struct{}{}
	w.peerMu.Unlock()
	defer func() {
		w.peerMu.Lock()
		delete(w.peers, p)
		w.peerMu.Unlock()
		p.shutdown()
	}()

	// The worker speaks first: version + registry fingerprint.
	reg := w.cl.Registry()
	h := hello{
		Version:  wireVersion,
		Devices:  w.cl.Devices(),
		Groups:   w.cl.GroupCount(),
		NumTypes: reg.NumTypes(),
	}
	for _, wl := range reg.Workloads() {
		h.Workloads = append(h.Workloads, wl.Name())
	}
	p.fw.enqueue(appendFrame(nil, frameHello, encodeHello(h)))

	for {
		kind, payload, _, err := readFrame(conn)
		if err != nil {
			return
		}
		switch kind {
		case frameDispatch:
			if !w.handleDispatch(p, payload) {
				return
			}
		case frameStatsReq:
			m, err := decodeStats(payload, false)
			if err != nil {
				return
			}
			body, err := json.Marshal(w.cl.Snapshot())
			if err != nil {
				return
			}
			p.fw.enqueue(appendFrame(nil, frameStats, encodeStats(m.ReqID, body)))
		case frameQuiesce:
			// Quiesce blocks on the inflight drain; the read loop keeps
			// nacking new dispatches meanwhile.
			go w.Quiesce()
		default:
			return
		}
	}
}

// handleDispatch admits one shipped cohort into the node's cluster.
// Launched units complete and ship their result; refused units nack
// with a reason that tells the frontend whether a retry elsewhere is
// safe. Reports false on a malformed frame (connection dies).
func (w *Worker) handleDispatch(p *workerPeer, payload []byte) bool {
	m, err := decodeDispatch(payload)
	if err != nil {
		return false
	}
	id := m.ID

	w.qmu.RLock()
	if w.quiescing {
		w.qmu.RUnlock()
		p.nack(id, nackQuiesce)
		return true
	}
	w.inflight.Add(1)
	w.qmu.RUnlock()

	u := &cluster.Unit{
		Type:  service.TypeID(m.Type),
		Group: int(m.Group),
		Reqs:  m.Reqs,
		Host:  m.Host,
		Done: func(res *cluster.Result) {
			defer w.inflight.Done()
			if res.Err != nil && errors.Is(res.Err, cluster.ErrNoHealthyDevice) {
				// Transfer shed: the unit never launched, retrying on
				// another node cannot double-commit.
				p.nack(id, nackNoDevice)
				return
			}
			p.fw.enqueue(appendFrame(nil, frameResult, encodeResult(resultFromCluster(id, res))))
		},
	}
	if !w.cl.Dispatch(u) {
		w.inflight.Done()
		if w.cl.Healthy() {
			p.nack(id, nackBusy)
		} else {
			p.nack(id, nackNoDevice)
		}
	}
	return true
}

// Quiesce drains the node toward death: new dispatches nack
// immediately, every already-admitted unit completes (its Besim writes
// commit exactly once) and ships its result, then every connection gets
// a bye. Blocks until the drain finishes; idempotent. The process stays
// alive until Close so stragglers can read their results.
func (w *Worker) Quiesce() {
	w.quiesceOnce.Do(func() {
		w.qmu.Lock()
		w.quiescing = true
		w.qmu.Unlock()
		w.inflight.Wait()
		w.peerMu.Lock()
		for p := range w.peers {
			p.fw.enqueue(appendFrame(nil, frameBye, nil))
		}
		w.peerMu.Unlock()
	})
}

// Quiescing reports whether a drain has begun.
func (w *Worker) Quiescing() bool {
	w.qmu.RLock()
	defer w.qmu.RUnlock()
	return w.quiescing
}

// Close tears the worker down: listener, connections, then the device
// cluster (which drains its own queues).
func (w *Worker) Close() {
	w.closed.Store(true)
	if w.ln != nil {
		w.ln.Close()
	}
	w.peerMu.Lock()
	peers := make([]*workerPeer, 0, len(w.peers))
	for p := range w.peers {
		peers = append(peers, p)
	}
	w.peerMu.Unlock()
	for _, p := range peers {
		p.shutdown()
	}
	w.cl.Close()
}
