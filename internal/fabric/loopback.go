package fabric

import (
	"errors"
	"fmt"

	"rhythm/internal/cluster"
)

// loopback is the in-process transport: every node is a cluster.Cluster
// in this process, and Send is a direct Dispatch with the completion
// relayed synchronously from the executing device's worker goroutine.
// A single-node loopback fabric is byte- and stats-identical to the
// bare cluster the cohort server used to construct.
type loopback struct {
	nodes  []*cluster.Cluster
	onDown func(int)
}

func newLoopback(cfg *Config) *loopback {
	lb := &loopback{}
	for i := 0; i < cfg.Nodes; i++ {
		ccfg := cluster.Config{
			Registry:              cfg.Registry,
			Devices:               cfg.DevicesPerNode,
			Groups:                cfg.Groups,
			CohortSize:            cfg.CohortSize,
			SlotsPerDevice:        cfg.SlotsPerDevice,
			QueueDepth:            cfg.QueueDepth,
			SessionBuckets:        cfg.SessionBuckets,
			SessionNodesPerBucket: cfg.SessionNodesPerBucket,
			Simt:                  cfg.Simt,
			MaxAttempts:           cfg.MaxAttempts,
			Manual:                cfg.Manual,
		}
		if i == 0 {
			// Device-fault plans keep their single-node meaning: they
			// target node 0's devices (the only node in the default
			// topology). Multi-node device faults are configured on the
			// owning worker.
			ccfg.Faults = cfg.Faults
		}
		lb.nodes = append(lb.nodes, cluster.New(ccfg))
	}
	return lb
}

func (lb *loopback) Kind() string { return "loopback" }
func (lb *loopback) Nodes() int   { return len(lb.nodes) }
func (lb *loopback) NodeAddr(n int) string {
	return fmt.Sprintf("loopback/%d", n)
}

func (lb *loopback) Send(n int, u *cluster.Unit, ev func(Event)) SendStatus {
	cl := lb.nodes[n]
	// A fresh unit per attempt: the node cluster owns its copy's
	// device-level attempt/hop counters, and the fabric's envelope owns
	// the node-level trail.
	iu := &cluster.Unit{
		Type:  u.Type,
		Group: u.Group,
		Reqs:  u.Reqs,
		Host:  u.Host,
		Done: func(res *cluster.Result) {
			if res.Err != nil && errors.Is(res.Err, cluster.ErrNoHealthyDevice) {
				// The node's last device died before this unit launched
				// (transfer shed): nothing executed, safe to retry on
				// another node.
				ev(Event{Kind: EvNack, Reason: nackNoDevice})
				return
			}
			ev(Event{Kind: EvDone, Res: res})
		},
	}
	if !cl.Dispatch(iu) {
		if !cl.Healthy() {
			return SendNodeDown
		}
		return SendBusy
	}
	return SendOK
}

// Quiesce is a no-op beyond the fabric's routing change: an in-process
// node's accepted units complete normally (the cluster's own
// quiesce-before-death discipline), and nothing new routes here.
func (lb *loopback) Quiesce(int) {}

func (lb *loopback) NodeSnapshot(n int) (cluster.Snapshot, bool) {
	return lb.nodes[n].Snapshot(), true
}

func (lb *loopback) OnNodeDown(fn func(int)) { lb.onDown = fn }

// Start starts Manual node clusters.
func (lb *loopback) Start() {
	for _, cl := range lb.nodes {
		cl.Start()
	}
}

func (lb *loopback) Close() {
	for _, cl := range lb.nodes {
		cl.Close()
	}
}
