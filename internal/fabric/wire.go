// Wire format of the fabric's cohort-shipping protocol (DESIGN.md §17).
//
// Every frame is length-prefixed and typed:
//
//	[4B little-endian payload length] [1B frame kind] [payload]
//
// The connection is fully multiplexed: a frontend pipelines many
// dispatch frames without waiting, the worker completes them out of
// order, and every dispatch is matched to its result or nack frame by
// the unit id the frontend assigned. Writers coalesce: frames queue on
// an in-process channel and a single writer goroutine drains the queue
// into one buffered write, flushing only when the queue runs dry, so a
// burst of cohorts costs one syscall, not one per cohort.
//
// All integers are little-endian and fixed-width — the frames carry
// modeled-hardware counters whose magnitudes are unbounded, and fixed
// width keeps the serialized size of a cohort deterministic, which the
// link-budget admission charges before sending.
package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rhythm/internal/cluster"
	"rhythm/internal/httpx"
	"rhythm/internal/sim"
	"rhythm/internal/simt"
)

// wireVersion gates the handshake: a worker and frontend must agree
// exactly (the frames carry raw struct layouts, not self-describing
// records).
const wireVersion = 1

// Frame kinds.
const (
	frameHello    = 1 // worker -> frontend: version + registry fingerprint
	frameDispatch = 2 // frontend -> worker: one formed cohort
	frameResult   = 3 // worker -> frontend: one completed cohort
	frameNack     = 4 // worker -> frontend: unit refused before launch (safe to retry)
	frameStatsReq = 5 // frontend -> worker: cluster snapshot request
	frameStats    = 6 // worker -> frontend: cluster snapshot (JSON)
	frameQuiesce  = 7 // frontend -> worker: drain launched work, nack the rest, say bye
	frameBye      = 8 // worker -> frontend: quiesce complete, no frames follow
)

// Nack reasons.
const (
	nackQuiesce  = 0 // the node is draining toward death
	nackNoDevice = 1 // every device on the node is dead
	nackBusy     = 2 // the node's device queues are full (backpressure: shed, don't retry)
)

// maxFrameBytes bounds a single frame so a corrupt length prefix cannot
// make the reader allocate unboundedly. Cohorts are bounded by
// CohortSize × the fixed request slot plus response buffers; 256 MiB is
// orders of magnitude above any real cohort.
const maxFrameBytes = 256 << 20

var errFrameTooBig = errors.New("fabric: frame exceeds size bound")

// writeFrame appends a framed payload to buf: length prefix, kind,
// payload. Returns the extended buffer.
func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)+1))
	buf = append(buf, kind)
	return append(buf, payload...)
}

// readFrame reads one frame from r: kind, payload, and the total bytes
// consumed off the wire (prefix included — the link budget charges
// them).
func readFrame(r io.Reader) (kind byte, payload []byte, wireBytes int, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, 0, errFrameTooBig
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, nil, 0, err
	}
	return body[0], body[1:], int(4 + n), nil
}

// --- primitive append helpers ---

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// wireReader decodes a payload with sticky error handling: the first
// short read poisons the reader and every later get returns zero, so
// decode paths check err once at the end.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("fabric: truncated frame at offset %d", r.off)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *wireReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *wireReader) i64() int64   { return int64(r.u64()) }
func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *wireReader) str() string {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// --- hello ---

// hello is the worker's first frame: protocol version plus the registry
// fingerprint (workload names in registration order and the fused type
// count). A frontend refuses a worker whose fingerprint differs — the
// wire carries raw TypeIDs, so both sides must have built the identical
// type space.
type hello struct {
	Version   uint16
	Devices   int
	Groups    int
	NumTypes  int
	Workloads []string
}

func encodeHello(h hello) []byte {
	b := make([]byte, 0, 64)
	b = appendU16(b, h.Version)
	b = appendU32(b, uint32(h.Devices))
	b = appendU32(b, uint32(h.Groups))
	b = appendU32(b, uint32(h.NumTypes))
	b = appendU16(b, uint16(len(h.Workloads)))
	for _, w := range h.Workloads {
		b = appendStr(b, w)
	}
	return b
}

func decodeHello(p []byte) (hello, error) {
	r := wireReader{b: p}
	var h hello
	h.Version = r.u16()
	h.Devices = int(r.u32())
	h.Groups = int(r.u32())
	h.NumTypes = int(r.u32())
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		h.Workloads = append(h.Workloads, r.str())
	}
	return h, r.err
}

// --- dispatch ---

// dispatchMsg ships one formed cohort: the frontend-assigned unit id,
// the fused type, the global shard group, the host-path flag, and every
// parsed request in full — including ScanCost, which the parser kernel
// charges compute by, so virtual time stays bit-identical to an
// in-process dispatch.
type dispatchMsg struct {
	ID    uint64
	Type  uint16
	Group int32
	Host  bool
	Reqs  []httpx.Request
}

func appendRequest(b []byte, q *httpx.Request) []byte {
	b = append(b, byte(q.Method))
	b = appendStr(b, q.Path)
	b = appendU16(b, uint16(len(q.Params)))
	for _, p := range q.Params {
		b = appendStr(b, p.Key)
		b = appendStr(b, p.Value)
	}
	b = appendU16(b, uint16(len(q.Cookies)))
	for _, c := range q.Cookies {
		b = appendStr(b, c.Key)
		b = appendStr(b, c.Value)
	}
	b = appendU32(b, uint32(q.ContentLength))
	b = appendStr(b, q.Body)
	b = appendU32(b, uint32(q.ScanCost))
	return b
}

func readRequest(r *wireReader, q *httpx.Request) {
	q.Method = httpx.Method(r.u8())
	q.Path = r.str()
	np := int(r.u16())
	for i := 0; i < np && r.err == nil; i++ {
		q.Params = append(q.Params, httpx.Param{Key: r.str(), Value: r.str()})
	}
	nc := int(r.u16())
	for i := 0; i < nc && r.err == nil; i++ {
		q.Cookies = append(q.Cookies, httpx.Param{Key: r.str(), Value: r.str()})
	}
	q.ContentLength = int(r.u32())
	q.Body = r.str()
	q.ScanCost = int(r.u32())
}

func encodeDispatch(m *dispatchMsg) []byte {
	b := make([]byte, 0, 64+len(m.Reqs)*96)
	b = appendU64(b, m.ID)
	b = appendU16(b, m.Type)
	b = appendU32(b, uint32(m.Group))
	host := byte(0)
	if m.Host {
		host = 1
	}
	b = append(b, host)
	b = appendU32(b, uint32(len(m.Reqs)))
	for i := range m.Reqs {
		b = appendRequest(b, &m.Reqs[i])
	}
	return b
}

func decodeDispatch(p []byte) (dispatchMsg, error) {
	r := wireReader{b: p}
	var m dispatchMsg
	m.ID = r.u64()
	m.Type = r.u16()
	m.Group = int32(r.u32())
	m.Host = r.u8() == 1
	n := int(r.u32())
	if r.err == nil && n >= 0 {
		m.Reqs = make([]httpx.Request, n)
		for i := 0; i < n && r.err == nil; i++ {
			readRequest(&r, &m.Reqs[i])
		}
	}
	return m, r.err
}

// --- result ---

// resultMsg carries one completed cohort back: rendered responses in
// request order, the per-stage launch statistics (so frontend stats,
// spans, and the adaptive controller see exactly what an in-process
// execution reports), and the failover trail. Stage wall-clock starts
// are worker-local and not meaningful across hosts, so only durations
// cross the wire; the frontend anchors them at receive time.
type resultMsg struct {
	ID          uint64
	Err         string // "" = ok
	Device      int32
	Host        bool
	Attempts    int32
	Hops        int32
	KernelErrs  int32
	DeviceTime  int64
	RenderDurNs int64
	StageDurs   []int64 // wall-clock ns per stage
	Stages      []simt.LaunchStats
	Resps       [][]byte
}

func appendLaunchStats(b []byte, st *simt.LaunchStats) []byte {
	b = appendStr(b, st.Kernel)
	b = appendU32(b, uint32(st.Threads))
	b = appendU32(b, uint32(st.Warps))
	b = appendI64(b, st.IssueCycles)
	b = appendI64(b, st.MemBytes)
	b = appendI64(b, st.Transactions)
	b = appendI64(b, st.IdealTxns)
	b = appendI64(b, st.BlockExecs)
	b = appendI64(b, st.DivergentExec)
	b = appendI64(b, int64(st.Duration))
	b = appendU64(b, st.Seq)
	b = appendF64(b, st.Occupancy)
	b = appendF64(b, st.EnergyJ)
	return b
}

func readLaunchStats(r *wireReader, st *simt.LaunchStats) {
	st.Kernel = r.str()
	st.Threads = int(r.u32())
	st.Warps = int(r.u32())
	st.IssueCycles = r.i64()
	st.MemBytes = r.i64()
	st.Transactions = r.i64()
	st.IdealTxns = r.i64()
	st.BlockExecs = r.i64()
	st.DivergentExec = r.i64()
	st.Duration = sim.Time(r.i64())
	st.Seq = r.u64()
	st.Occupancy = r.f64()
	st.EnergyJ = r.f64()
}

func encodeResult(m *resultMsg) []byte {
	size := 96 + len(m.Stages)*128
	for _, p := range m.Resps {
		size += len(p) + 4
	}
	b := make([]byte, 0, size)
	b = appendU64(b, m.ID)
	b = appendStr(b, m.Err)
	b = appendU32(b, uint32(m.Device))
	host := byte(0)
	if m.Host {
		host = 1
	}
	b = append(b, host)
	b = appendU32(b, uint32(m.Attempts))
	b = appendU32(b, uint32(m.Hops))
	b = appendU32(b, uint32(m.KernelErrs))
	b = appendI64(b, m.DeviceTime)
	b = appendI64(b, m.RenderDurNs)
	b = appendU16(b, uint16(len(m.Stages)))
	for i := range m.Stages {
		b = appendI64(b, m.StageDurs[i])
		b = appendLaunchStats(b, &m.Stages[i])
	}
	b = appendU32(b, uint32(len(m.Resps)))
	for _, p := range m.Resps {
		b = appendBytes(b, p)
	}
	return b
}

func decodeResult(p []byte) (resultMsg, error) {
	r := wireReader{b: p}
	var m resultMsg
	m.ID = r.u64()
	m.Err = r.str()
	m.Device = int32(r.u32())
	m.Host = r.u8() == 1
	m.Attempts = int32(r.u32())
	m.Hops = int32(r.u32())
	m.KernelErrs = int32(r.u32())
	m.DeviceTime = r.i64()
	m.RenderDurNs = r.i64()
	ns := int(r.u16())
	if r.err == nil {
		m.StageDurs = make([]int64, ns)
		m.Stages = make([]simt.LaunchStats, ns)
		for i := 0; i < ns && r.err == nil; i++ {
			m.StageDurs[i] = r.i64()
			readLaunchStats(&r, &m.Stages[i])
		}
	}
	nr := int(r.u32())
	for i := 0; i < nr && r.err == nil; i++ {
		m.Resps = append(m.Resps, r.bytes())
	}
	return m, r.err
}

// resultFromCluster flattens a cluster.Result into its wire form.
func resultFromCluster(id uint64, res *cluster.Result) *resultMsg {
	m := &resultMsg{
		ID:          id,
		Device:      int32(res.Device),
		Host:        res.Host,
		Attempts:    int32(res.Attempts),
		Hops:        int32(res.Hops),
		KernelErrs:  int32(res.KernelErrs),
		DeviceTime:  int64(res.DeviceTime),
		RenderDurNs: int64(res.RenderDur),
		Resps:       res.Resps,
	}
	if res.Err != nil {
		m.Err = res.Err.Error()
	}
	for _, se := range res.Stages {
		m.StageDurs = append(m.StageDurs, int64(se.Dur))
		m.Stages = append(m.Stages, se.Stats)
	}
	return m
}

// clusterResult rebuilds a cluster.Result from the wire, anchoring the
// worker-local stage and render start times at the receive instant.
func (m *resultMsg) clusterResult() *cluster.Result {
	res := &cluster.Result{
		Resps:      m.Resps,
		KernelErrs: int(m.KernelErrs),
		Device:     int(m.Device),
		Host:       m.Host,
		Attempts:   int(m.Attempts),
		Hops:       int(m.Hops),
		DeviceTime: sim.Time(m.DeviceTime),
		RenderDur:  time.Duration(m.RenderDurNs),
	}
	if m.Err != "" {
		res.Err = errors.New(m.Err)
	}
	now := time.Now()
	res.RenderStart = now.Add(-time.Duration(m.RenderDurNs))
	for i := range m.Stages {
		dur := time.Duration(m.StageDurs[i])
		res.Stages = append(res.Stages, cluster.StageExec{
			Stats: m.Stages[i],
			Start: now.Add(-dur),
			Dur:   dur,
		})
	}
	return res
}

// --- nack ---

type nackMsg struct {
	ID     uint64
	Reason byte
}

func encodeNack(m nackMsg) []byte {
	b := make([]byte, 0, 9)
	b = appendU64(b, m.ID)
	return append(b, m.Reason)
}

func decodeNack(p []byte) (nackMsg, error) {
	r := wireReader{b: p}
	m := nackMsg{ID: r.u64(), Reason: r.u8()}
	return m, r.err
}

// --- stats ---

type statsMsg struct {
	ReqID uint64
	JSON  []byte // frameStats only
}

func encodeStatsReq(id uint64) []byte {
	return appendU64(nil, id)
}

func encodeStats(id uint64, body []byte) []byte {
	b := make([]byte, 0, 12+len(body))
	b = appendU64(b, id)
	return appendBytes(b, body)
}

func decodeStats(p []byte, withBody bool) (statsMsg, error) {
	r := wireReader{b: p}
	m := statsMsg{ReqID: r.u64()}
	if withBody {
		m.JSON = r.bytes()
	}
	return m, r.err
}

// dispatchWireBytes reports the exact framed size of a dispatch message
// without encoding it — the link-budget admission charges this before
// the frame is built.
func dispatchWireBytes(reqs []httpx.Request) int {
	n := 4 + 1 + 8 + 2 + 4 + 1 + 4 // frame prefix+kind, id, type, group, host, count
	for i := range reqs {
		q := &reqs[i]
		n += 1 + 4 + len(q.Path) + 2 + 2 + 4 + 4 + len(q.Body) + 4
		for _, p := range q.Params {
			n += 8 + len(p.Key) + len(p.Value)
		}
		for _, c := range q.Cookies {
			n += 8 + len(c.Key) + len(c.Value)
		}
	}
	return n
}
