// Package fabric is Rhythm's remote device tier: it takes the formed
// cohorts the frontend's dispatch loop produces and ships them to
// device *nodes* — each node a full cluster.Cluster of modeled SIMT
// devices — over a pluggable Transport. The loopback transport keeps
// every node in-process (the default, byte-identical to the single
// cluster the cohort server used to own); the tcp transport dials
// `rhythmd -worker` processes and speaks the multiplexed wire protocol
// in wire.go. DESIGN.md §17 documents the framing, the backpressure
// rules, and the node failover state machine.
//
// Routing is consistent-hash session affinity lifted one level: every
// node's cluster is built with the same *global* shard-group table, a
// request's group is derived exactly as before (workload affinity
// bucket mod total groups), and the fabric assigns each group to a node
// by rendezvous (highest-random-weight) hashing over the live node set.
// Node death therefore moves only the dead node's groups, and the
// assignment is a pure function of (group, live nodes) — identical on
// loopback and tcp, which is what keeps the transports byte-identical.
//
// Failover extends the cluster's quiesce-before-death discipline to
// whole nodes: a dying node completes every unit it has launched
// (their Besim writes commit exactly once) and NACKs units it never
// launched; the fabric marks the node down, re-routes its groups, and
// re-dispatches NACKed units with the hop recorded in Result.Hops so
// flight-recorder attempt trails survive the move. A connection that
// dies *without* the bye handshake leaves its in-flight units' fates
// unknown; those are shed with an error, never retried — at-most-once,
// the same contract a lost device gives.
package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"rhythm/internal/cluster"
	"rhythm/internal/httpx"
	"rhythm/internal/netmodel"
	"rhythm/internal/service"
	"rhythm/internal/session"
	"rhythm/internal/simt"
)

// ErrNoNode is delivered as Result.Err when a unit cannot be placed on
// any live node (every node down, or re-dispatch after a NACK found no
// taker).
var ErrNoNode = errors.New("fabric: no routable node")

// ErrUnitLost is delivered as Result.Err when the link to a node died
// with the unit's fate unknown. The unit may have executed — it is
// never re-dispatched (the exactly-once write guarantee), so the
// request sheds.
var ErrUnitLost = errors.New("fabric: node connection lost with unit in flight")

// Event is a transport's completion report for one shipped unit.
// Exactly one Event follows every accepted Send.
type Event struct {
	Kind EventKind
	// Res is the execution result (EvDone only).
	Res *cluster.Result
	// Reason is the nack reason (EvNack only): nackQuiesce, nackNoDevice
	// or nackBusy.
	Reason byte
	// WireBytes is the inbound frame size on tcp (0 on loopback, whose
	// bus bytes are fully charged at dispatch).
	WireBytes int
}

// EventKind classifies a completion event.
type EventKind int

const (
	// EvDone: the unit executed (possibly with Res.Err set by the node's
	// own shed path).
	EvDone EventKind = iota
	// EvNack: the node refused the unit before launching it. Reason
	// nackQuiesce / nackNoDevice mean the node is gone — mark it down
	// and re-dispatch (safe: nothing executed). Reason nackBusy is pure
	// backpressure — shed, the node stays up.
	EvNack
	// EvLost: the connection died with the unit in flight; fate unknown,
	// never retried.
	EvLost
)

// SendStatus is a Transport.Send's synchronous verdict.
type SendStatus int

const (
	// SendOK: accepted; an Event will follow.
	SendOK SendStatus = iota
	// SendBusy: refused by backpressure (bounded queue full). No Event.
	SendBusy
	// SendNodeDown: the node cannot take work at all (dead cluster,
	// closed connection). No Event; the fabric marks the node down and
	// re-routes.
	SendNodeDown
)

// Transport ships units to nodes. Implementations: loopback (in-process
// clusters) and tcp (remote rhythmd -worker processes). All methods are
// safe for concurrent use; ev callbacks may fire on transport-internal
// goroutines and must not be called after Close returns.
type Transport interface {
	// Kind names the transport ("loopback", "tcp") for /v1/topology.
	Kind() string
	// Nodes reports the node count (fixed for the transport's lifetime).
	Nodes() int
	// NodeAddr names node n (listen address on tcp, "loopback/N" else).
	NodeAddr(n int) string
	// Send ships u to node n. On SendOK exactly one ev call follows.
	Send(n int, u *cluster.Unit, ev func(Event)) SendStatus
	// Quiesce asks node n to drain: complete launched units, NACK the
	// rest, then report bye. Idempotent.
	Quiesce(n int)
	// NodeSnapshot fetches node n's cluster snapshot (a blocking RPC on
	// tcp, bounded by an internal timeout; ok=false when unreachable).
	NodeSnapshot(n int) (cluster.Snapshot, bool)
	// OnNodeDown registers the fabric's node-death callback: called at
	// most once per node, when the transport learns the node is gone
	// (bye received, connection lost, cluster dead).
	OnNodeDown(fn func(n int))
	// Close tears the transport down. Loopback closes its clusters; tcp
	// closes its connections.
	Close()
}

// Config sizes a fabric.
type Config struct {
	// Registry is the fused workload registry (required). With tcp
	// nodes, the workers must be built from an identical registry — the
	// hello handshake enforces it by fingerprint.
	Registry *service.Registry
	// Nodes is the loopback node count (default 1). Ignored when Addrs
	// or Transport is set.
	Nodes int
	// Addrs lists tcp worker addresses; non-empty selects the tcp
	// transport with one node per address.
	Addrs []string
	// Transport overrides transport construction entirely (tests).
	Transport Transport
	// DevicesPerNode is each node's modeled device count (default 1).
	// Loopback only; tcp workers size themselves.
	DevicesPerNode int
	// Groups is the GLOBAL shard-group count (default nodes ×
	// DevicesPerNode). Every node's cluster is built with all Groups
	// groups so group state exists wherever routing may land — that, plus
	// the full host session-array geometry per group, is what makes
	// responses byte-identical across node counts and transports.
	Groups int
	// Cluster geometry threaded to each loopback node (see
	// cluster.Config).
	CohortSize            int
	SlotsPerDevice        int
	QueueDepth            int
	SessionBuckets        int
	SessionNodesPerBucket int
	Simt                  simt.Config
	MaxAttempts           int
	// Faults injects device-level faults into loopback node 0 (the
	// single-node default keeps the existing CohortOptions.FaultPlan
	// semantics; multi-node device faults are a worker-side concern).
	Faults *cluster.FaultPlan
	// NodeFaults kills whole nodes deterministically (failover drills):
	// the fabric quiesces the node once it has accepted the configured
	// unit count, and the triggering unit re-routes with a recorded hop.
	NodeFaults *NodeFaultPlan
	// LinkBps budgets each node's link in bytes/sec (0 = unmetered):
	// the NIC in front of a tcp worker, the PCIe bus in front of a
	// loopback node. Saturation sheds with 503 (netmodel.Link).
	LinkBps float64
	// Manual defers loopback node startup to Start() (harness prefill).
	Manual bool
}

func (c *Config) fill() {
	if c.Registry == nil {
		panic("fabric: Config.Registry is required")
	}
	if len(c.Addrs) > 0 {
		c.Nodes = len(c.Addrs)
	}
	if c.Transport != nil {
		c.Nodes = c.Transport.Nodes()
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.DevicesPerNode <= 0 {
		c.DevicesPerNode = 1
	}
	if c.Groups <= 0 {
		c.Groups = c.Nodes * c.DevicesPerNode
	}
}

// NodeFault kills one node after it has accepted a number of units.
type NodeFault struct {
	Node int `json:"node"`
	// AfterUnits: the fault trips when the node's accepted-unit count
	// reaches this value — the (AfterUnits+1)-th unit is never sent and
	// re-routes instead.
	AfterUnits uint64 `json:"after_units"`
}

// NodeFaultPlan is a deterministic node-kill schedule.
type NodeFaultPlan struct {
	Faults []NodeFault `json:"faults"`
}

// ParseNodeFaultPlan decodes a JSON node-fault schedule:
//
//	{"faults": [{"node": 1, "after_units": 0}]}
func ParseNodeFaultPlan(data []byte) (*NodeFaultPlan, error) {
	var p NodeFaultPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fabric: parsing node fault plan: %w", err)
	}
	return &p, nil
}

// LoadNodeFaultPlan reads and parses a JSON node-fault schedule file.
func LoadNodeFaultPlan(path string) (*NodeFaultPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseNodeFaultPlan(data)
}

// nodeState is the fabric's bookkeeping for one node.
type nodeState struct {
	up          bool
	addr        string
	link        *netmodel.Link
	dispatched  uint64 // units accepted by the node
	completed   uint64
	nacked      uint64
	lost        uint64
	outstanding int
	// lastSnap caches the node's last good cluster snapshot so a stats
	// scrape during a worker hiccup degrades to stale rather than empty.
	lastSnap   cluster.Snapshot
	hasSnap    bool
	busBytes   float64 // loopback: mix-average modeled bus bytes per request
	faultAfter uint64  // 0 = no pending node fault
	hasFault   bool
}

// Fabric routes formed cohorts across device nodes. It exposes the same
// dispatch surface cluster.Cluster gave the cohort server — GroupFor,
// Dispatch, Snapshot, Close — plus the node-level topology view.
type Fabric struct {
	cfg Config
	reg *service.Registry
	tr  Transport

	// specBusBytes prices one request of each type on the modeled bus
	// (loopback link charging), indexed by TypeID.
	specBusBytes []int

	mu            sync.Mutex
	nodes         []nodeState
	pref          [][]int // group -> node preference order (rendezvous)
	nodeFailovers uint64
	nodeRetries   uint64
	linkSheds     uint64
	lostUnits     uint64
}

// envelope tracks one unit across node hops. done is the caller's
// completion; hops counts node moves (NACK re-dispatches), folded into
// Result.Hops on completion so the flight recorder's attempt trail
// survives cross-node retries.
type envelope struct {
	u    *cluster.Unit
	done func(*cluster.Result)
	hops int
}

// New builds the fabric and its transport. Loopback nodes start their
// device workers immediately unless cfg.Manual.
func New(cfg Config) (*Fabric, error) {
	cfg.fill()
	f := &Fabric{
		cfg:          cfg,
		reg:          cfg.Registry,
		specBusBytes: make([]int, cfg.Registry.NumTypes()),
	}
	for t := range f.specBusBytes {
		f.specBusBytes[t] = netmodel.BusBytesPerSpec(cfg.Registry.Spec(service.TypeID(t)))
	}
	switch {
	case cfg.Transport != nil:
		f.tr = cfg.Transport
	case len(cfg.Addrs) > 0:
		// dialTCP adopts the workers' global group table into cfg.Groups.
		tr, err := dialTCP(&cfg)
		if err != nil {
			return nil, err
		}
		f.tr = tr
	default:
		f.tr = newLoopback(&cfg)
	}
	f.cfg = cfg
	n := f.tr.Nodes()
	f.nodes = make([]nodeState, n)
	for i := range f.nodes {
		f.nodes[i] = nodeState{
			up:   true,
			addr: f.tr.NodeAddr(i),
			link: netmodel.NewLink(cfg.LinkBps),
		}
	}
	if cfg.NodeFaults != nil {
		for _, nf := range cfg.NodeFaults.Faults {
			if nf.Node >= 0 && nf.Node < n {
				f.nodes[nf.Node].faultAfter = nf.AfterUnits
				f.nodes[nf.Node].hasFault = true
			}
		}
	}
	f.pref = buildPreferences(cfg.Groups, n)
	f.tr.OnNodeDown(f.nodeDown)
	return f, nil
}

// rdvHash mixes (group, node) into a deterministic 64-bit weight — a
// splitmix64 finalizer, the same on every platform, so loopback and tcp
// fabrics with equal node counts route identically.
func rdvHash(g, n int) uint64 {
	x := uint64(g)*0x9E3779B97F4A7C15 + uint64(n)*0xC2B2AE3D27D4EB4F + 0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// buildPreferences precomputes each group's node preference order by
// descending rendezvous weight. The group's owner is the first live
// node in its order, so node death disturbs only the dead node's
// groups (each slides to its own next preference — no global reshard).
func buildPreferences(groups, nodes int) [][]int {
	pref := make([][]int, groups)
	for g := 0; g < groups; g++ {
		order := make([]int, nodes)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return rdvHash(g, order[a]) > rdvHash(g, order[b])
		})
		pref[g] = order
	}
	return pref
}

// CoveringGroups reports the smallest global group count >= nodes for
// which rendezvous routing gives every one of nodes live nodes at
// least one group. Weak-scaling harnesses use it to build the cheapest
// group table that still lets them address each node through a group
// it owns; production fabrics should instead over-provision groups
// (the default nodes × devices) so failover has somewhere to spread.
func CoveringGroups(nodes int) int {
	for g := nodes; ; g++ {
		covered := make([]bool, nodes)
		count := 0
		for grp := 0; grp < g && count < nodes; grp++ {
			best, bestW := 0, rdvHash(grp, 0)
			for n := 1; n < nodes; n++ {
				if w := rdvHash(grp, n); w > bestW {
					best, bestW = n, w
				}
			}
			if !covered[best] {
				covered[best] = true
				count++
			}
		}
		if count == nodes {
			return g
		}
	}
}

// Kind reports the transport kind ("loopback", "tcp").
func (f *Fabric) Kind() string { return f.tr.Kind() }

// Nodes reports the node count.
func (f *Fabric) Nodes() int { return f.tr.Nodes() }

// GroupCount reports the global shard-group count.
func (f *Fabric) GroupCount() int { return f.cfg.Groups }

// Registry exposes the registry the fabric serves.
func (f *Fabric) Registry() *service.Registry { return f.reg }

// GroupFor reports the global shard group a classified request routes
// to — the same affinity-bucket-mod-groups rule the cluster used, over
// the fabric-wide group table.
func (f *Fabric) GroupFor(req *httpx.Request, t service.TypeID) int {
	buckets := f.cfg.SessionBuckets
	if buckets <= 0 {
		buckets = 256
	}
	b := f.reg.Affinity(req, t, buckets)
	if b < 0 {
		return -1
	}
	return b % f.cfg.Groups
}

// OwnerOf reports the node a group currently routes to (-1 when every
// node is down). Exposed for tests and topology introspection.
func (f *Fabric) OwnerOf(g int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ownerLocked(g)
}

func (f *Fabric) ownerLocked(g int) int {
	for _, n := range f.pref[g] {
		if f.nodes[n].up {
			return n
		}
	}
	return -1
}

// leastLoadedLocked picks the live node with the fewest outstanding
// units (stable by id) for stateless units.
func (f *Fabric) leastLoadedLocked() int {
	best, bestOut := -1, 0
	for i := range f.nodes {
		if !f.nodes[i].up {
			continue
		}
		if best < 0 || f.nodes[i].outstanding < bestOut {
			best, bestOut = i, f.nodes[i].outstanding
		}
	}
	return best
}

// Dispatch routes one formed cohort to its group's node, reporting
// false when the unit must shed: every node down, the owner's link
// budget exhausted, or the owner's queues full. On false the unit was
// not shipped and Done will not be called. On true Done is called
// exactly once, from a transport goroutine.
func (f *Fabric) Dispatch(u *cluster.Unit) bool {
	env := &envelope{u: u, done: u.Done}
	return f.dispatch(env)
}

// dispatch places (or re-places, after a node fault or NACK) an
// envelope. Each iteration either ships the unit, resolves to a shed,
// or — when the routed node trips its fault plan or refuses as down —
// marks the node dead and retries the next preference.
func (f *Fabric) dispatch(env *envelope) bool {
	u := env.u
	for {
		f.mu.Lock()
		var n int
		if u.Group >= 0 {
			n = f.ownerLocked(u.Group)
		} else {
			n = f.leastLoadedLocked()
		}
		if n < 0 {
			f.mu.Unlock()
			return false
		}
		ns := &f.nodes[n]
		// Deterministic node-kill drill: the node dies the moment its
		// accepted count reaches the plan's threshold. The triggering
		// unit is never sent — exactly-once trivially holds — and
		// re-routes with a recorded hop, exercising the same path a
		// worker-initiated quiesce NACK takes.
		if ns.hasFault && ns.dispatched >= ns.faultAfter {
			ns.hasFault = false
			f.markDownLocked(n)
			f.nodeRetries++
			env.hops++
			f.mu.Unlock()
			f.tr.Quiesce(n)
			continue
		}
		if !ns.link.Admit(f.unitBytes(n, u)) {
			f.linkSheds++
			f.mu.Unlock()
			return false
		}
		ns.dispatched++
		ns.outstanding++
		f.mu.Unlock()

		st := f.tr.Send(n, u, func(ev Event) { f.handleEvent(env, n, ev) })
		switch st {
		case SendOK:
			return true
		case SendBusy:
			f.mu.Lock()
			f.nodes[n].dispatched--
			f.nodes[n].outstanding--
			f.mu.Unlock()
			return false
		default: // SendNodeDown
			f.mu.Lock()
			f.nodes[n].dispatched--
			f.nodes[n].outstanding--
			f.markDownLocked(n)
			f.nodeRetries++
			env.hops++
			f.mu.Unlock()
		}
	}
}

// unitBytes prices a unit on node n's link: exact frame bytes for tcp,
// the modeled §6.1.1 bus bytes for loopback.
func (f *Fabric) unitBytes(n int, u *cluster.Unit) int {
	if f.tr.Kind() == "tcp" {
		return dispatchWireBytes(u.Reqs)
	}
	return len(u.Reqs) * f.specBusBytes[u.Type]
}

// handleEvent consumes one transport completion on a transport
// goroutine.
func (f *Fabric) handleEvent(env *envelope, n int, ev Event) {
	switch ev.Kind {
	case EvDone:
		f.mu.Lock()
		f.nodes[n].outstanding--
		f.nodes[n].completed++
		if ev.WireBytes > 0 {
			f.nodes[n].link.NoteRecv(ev.WireBytes)
		}
		f.mu.Unlock()
		res := ev.Res
		res.Hops += env.hops
		env.done(res)
	case EvNack:
		f.mu.Lock()
		f.nodes[n].outstanding--
		f.nodes[n].nacked++
		if ev.WireBytes > 0 {
			f.nodes[n].link.NoteRecv(ev.WireBytes)
		}
		if ev.Reason == nackBusy {
			f.mu.Unlock()
			env.done(&cluster.Result{Device: -1, Err: cluster.ErrNoHealthyDevice})
			return
		}
		// Quiesce / no-device: the node is gone and the unit never
		// launched — re-dispatch on the next preference, recording the
		// hop so the flight trail shows the move.
		f.markDownLocked(n)
		f.nodeRetries++
		env.hops++
		f.mu.Unlock()
		if !f.dispatch(env) {
			env.done(&cluster.Result{Device: -1, Err: ErrNoNode})
		}
	case EvLost:
		f.mu.Lock()
		f.nodes[n].outstanding--
		f.nodes[n].lost++
		f.lostUnits++
		f.markDownLocked(n)
		f.mu.Unlock()
		env.done(&cluster.Result{Device: -1, Err: ErrUnitLost})
	}
}

// nodeDown is the transport's node-death callback (bye received,
// connection lost).
func (f *Fabric) nodeDown(n int) {
	f.mu.Lock()
	f.markDownLocked(n)
	f.mu.Unlock()
}

// markDownLocked transitions a node to down once, counting the
// failover. Group re-routing is implicit: ownerLocked skips down nodes.
func (f *Fabric) markDownLocked(n int) {
	if !f.nodes[n].up {
		return
	}
	f.nodes[n].up = false
	f.nodeFailovers++
}

// KillNode quiesces node n (testing and operational drills): the node
// completes its launched units, NACKs the rest, and the fabric re-routes
// its groups.
func (f *Fabric) KillNode(n int) {
	f.mu.Lock()
	f.markDownLocked(n)
	f.mu.Unlock()
	f.tr.Quiesce(n)
}

// Start starts Manual loopback nodes (no-op otherwise).
func (f *Fabric) Start() {
	if lb, ok := f.tr.(*loopback); ok {
		lb.Start()
	}
}

// Close tears down the transport (loopback: close node clusters; tcp:
// close connections). Callers must stop Dispatching first.
func (f *Fabric) Close() { f.tr.Close() }

// --- loopback-only surfaces ---
//
// The render cache and live launch-profile merging need in-process
// access to node state; with a tcp transport they report absent and the
// cohort server disables the dependent features (DESIGN.md §17).

// Loopback reports whether every node is in-process.
func (f *Fabric) Loopback() bool {
	_, ok := f.tr.(*loopback)
	return ok
}

// SetWriteHook registers fn on every loopback node's backend stores,
// reporting false (and registering nothing) on remote transports —
// remote workers' writes commit in their own process.
func (f *Fabric) SetWriteHook(fn func(uid uint64)) bool {
	lb, ok := f.tr.(*loopback)
	if !ok {
		return false
	}
	for _, cl := range lb.nodes {
		cl.SetWriteHook(fn)
	}
	return true
}

// GroupSessions exposes a group's session array on its OWNING loopback
// node (nil on remote transports, or when every node is down). The
// render cache reads it bucket-locked; writes stay single-writer on
// the owning node's device workers.
func (f *Fabric) GroupSessions(g int) *session.Array {
	lb, ok := f.tr.(*loopback)
	if !ok {
		return nil
	}
	n := f.OwnerOf(g)
	if n < 0 {
		return nil
	}
	return lb.nodes[n].GroupSessions(g)
}

// Node exposes loopback node n's cluster (harness and tests; nil on
// remote transports).
func (f *Fabric) Node(n int) *cluster.Cluster {
	lb, ok := f.tr.(*loopback)
	if !ok {
		return nil
	}
	return lb.nodes[n]
}

// nodeProfileStride offsets stream ids per node in merged launch
// profiles, one level above the cluster's per-device stride.
const nodeProfileStride = 10000

// Profiles merges every loopback node's launch-profile rings (empty on
// remote transports — remote rings live in the worker process).
func (f *Fabric) Profiles() []simt.LaunchRecord {
	lb, ok := f.tr.(*loopback)
	if !ok {
		return nil
	}
	var out []simt.LaunchRecord
	for i, cl := range lb.nodes {
		for _, rec := range cl.Profiles() {
			rec.Stream += i * nodeProfileStride
			out = append(out, rec)
		}
	}
	return out
}

// LaunchFloors snapshots per-node launch floors for ProfilesSince.
func (f *Fabric) LaunchFloors() [][]uint64 {
	lb, ok := f.tr.(*loopback)
	if !ok {
		return nil
	}
	out := make([][]uint64, len(lb.nodes))
	for i, cl := range lb.nodes {
		out[i] = cl.LaunchFloors()
	}
	return out
}

// ProfilesSince merges launch records newer than a LaunchFloors
// snapshot.
func (f *Fabric) ProfilesSince(floors [][]uint64) []simt.LaunchRecord {
	lb, ok := f.tr.(*loopback)
	if !ok {
		return nil
	}
	var out []simt.LaunchRecord
	for i, cl := range lb.nodes {
		var fl []uint64
		if i < len(floors) {
			fl = floors[i]
		}
		for _, rec := range cl.ProfilesSince(fl) {
			rec.Stream += i * nodeProfileStride
			out = append(out, rec)
		}
	}
	return out
}
