package fabric

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"rhythm/internal/cluster"
	"rhythm/internal/service"
)

// statsTimeout bounds a remote node's snapshot RPC: a scrape during a
// worker hiccup degrades to the fabric's stale cache instead of hanging
// the stats endpoint.
const statsTimeout = 2 * time.Second

// tcpWriteQueue bounds the per-connection frame queue. The dispatch
// path blocks when it fills (pipelining backpressure from a slow link),
// which is the behaviour a saturated NIC would impose.
const tcpWriteQueue = 1024

// tcpTransport ships units to rhythmd -worker processes: one
// multiplexed connection per node, many in-flight cohorts per
// connection, completions matched by unit id in any order.
type tcpTransport struct {
	conns []*workerConn

	downMu sync.Mutex
	onDown func(int)
}

// dialTCP connects to every worker, validates the hello handshake
// (protocol version and registry fingerprint), and requires all workers
// to agree on the global group table. The fabric adopts the workers'
// group count — the group table is worker-side state, and the frontend
// must route over the exact table the workers were built with.
func dialTCP(cfg *Config) (*tcpTransport, error) {
	t := &tcpTransport{}
	groups := -1
	for i, addr := range cfg.Addrs {
		c, err := dialWorker(t, i, addr, cfg.Registry)
		if err != nil {
			for _, open := range t.conns {
				open.shutdown()
			}
			return nil, err
		}
		if groups < 0 {
			groups = c.hello.Groups
		} else if c.hello.Groups != groups {
			c.shutdown()
			for _, open := range t.conns {
				open.shutdown()
			}
			return nil, fmt.Errorf("fabric: worker %s has %d groups, worker %s has %d — all workers must share one global group table",
				cfg.Addrs[0], groups, addr, c.hello.Groups)
		}
		t.conns = append(t.conns, c)
	}
	if groups > 0 {
		cfg.Groups = groups
	}
	return t, nil
}

// workerConn is one node's multiplexed connection.
type workerConn struct {
	tr    *tcpTransport
	node  int
	addr  string
	conn  net.Conn
	hello hello

	fw      *frameWriter
	closeCh chan struct{}

	mu           sync.Mutex
	down         bool
	nextID       uint64
	pending      map[uint64]func(Event)
	nextStatsID  uint64
	statsWaiters map[uint64]chan []byte

	failOnce sync.Once
	downOnce sync.Once
}

func dialWorker(t *tcpTransport, node int, addr string, reg *service.Registry) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("fabric: dial worker %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// The worker speaks first: hello with its registry fingerprint.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, payload, _, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("fabric: worker %s: reading hello: %w", addr, err)
	}
	if kind != frameHello {
		conn.Close()
		return nil, fmt.Errorf("fabric: worker %s: expected hello, got frame kind %d", addr, kind)
	}
	h, err := decodeHello(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("fabric: worker %s: %w", addr, err)
	}
	if err := checkHello(h, reg); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fabric: worker %s: %w", addr, err)
	}
	c := &workerConn{
		tr:           t,
		node:         node,
		addr:         addr,
		conn:         conn,
		hello:        h,
		closeCh:      make(chan struct{}),
		pending:      make(map[uint64]func(Event)),
		statsWaiters: make(map[uint64]chan []byte),
	}
	c.fw = startFrameWriter(conn, c.closeCh, func() { c.fail() })
	go c.readLoop()
	return c, nil
}

// checkHello validates a worker's fingerprint against the frontend's
// registry: the wire carries raw TypeIDs, so both processes must have
// fused an identical type space.
func checkHello(h hello, reg *service.Registry) error {
	if h.Version != wireVersion {
		return fmt.Errorf("wire version %d, frontend speaks %d", h.Version, wireVersion)
	}
	if h.NumTypes != reg.NumTypes() {
		return fmt.Errorf("worker registry has %d types, frontend has %d", h.NumTypes, reg.NumTypes())
	}
	ws := reg.Workloads()
	if len(h.Workloads) != len(ws) {
		return fmt.Errorf("worker serves %d workloads, frontend has %d", len(h.Workloads), len(ws))
	}
	for i, w := range ws {
		if h.Workloads[i] != w.Name() {
			return fmt.Errorf("workload %d is %q on the worker, %q on the frontend", i, h.Workloads[i], w.Name())
		}
	}
	return nil
}

func (t *tcpTransport) Kind() string { return "tcp" }
func (t *tcpTransport) Nodes() int   { return len(t.conns) }
func (t *tcpTransport) NodeAddr(n int) string {
	return t.conns[n].addr
}

func (t *tcpTransport) OnNodeDown(fn func(int)) {
	t.downMu.Lock()
	t.onDown = fn
	t.downMu.Unlock()
}

func (t *tcpTransport) fireDown(n int) {
	t.downMu.Lock()
	fn := t.onDown
	t.downMu.Unlock()
	if fn != nil {
		fn(n)
	}
}

func (t *tcpTransport) Send(n int, u *cluster.Unit, ev func(Event)) SendStatus {
	c := t.conns[n]
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return SendNodeDown
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ev
	c.mu.Unlock()

	m := dispatchMsg{ID: id, Type: uint16(u.Type), Group: int32(u.Group), Host: u.Host, Reqs: u.Reqs}
	frame := appendFrame(nil, frameDispatch, encodeDispatch(&m))
	if !c.enqueue(frame) {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return SendNodeDown
	}
	return SendOK
}

func (t *tcpTransport) Quiesce(n int) {
	t.conns[n].enqueue(appendFrame(nil, frameQuiesce, nil))
}

func (t *tcpTransport) NodeSnapshot(n int) (cluster.Snapshot, bool) {
	c := t.conns[n]
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return cluster.Snapshot{}, false
	}
	c.nextStatsID++
	id := c.nextStatsID
	ch := make(chan []byte, 1)
	c.statsWaiters[id] = ch
	c.mu.Unlock()

	if !c.enqueue(appendFrame(nil, frameStatsReq, encodeStatsReq(id))) {
		c.dropStatsWaiter(id)
		return cluster.Snapshot{}, false
	}
	select {
	case body := <-ch:
		var snap cluster.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return cluster.Snapshot{}, false
		}
		return snap, true
	case <-time.After(statsTimeout):
		c.dropStatsWaiter(id)
		return cluster.Snapshot{}, false
	case <-c.closeCh:
		return cluster.Snapshot{}, false
	}
}

func (c *workerConn) dropStatsWaiter(id uint64) {
	c.mu.Lock()
	delete(c.statsWaiters, id)
	c.mu.Unlock()
}

func (t *tcpTransport) Close() {
	for _, c := range t.conns {
		c.shutdown()
	}
}

func (c *workerConn) enqueue(frame []byte) bool {
	return c.fw.enqueue(frame)
}

// readLoop demultiplexes worker frames back to their waiting units.
func (c *workerConn) readLoop() {
	for {
		kind, payload, wireBytes, err := readFrame(c.conn)
		if err != nil {
			c.fail()
			return
		}
		switch kind {
		case frameResult:
			m, err := decodeResult(payload)
			if err != nil {
				c.fail()
				return
			}
			if ev := c.takePending(m.ID); ev != nil {
				ev(Event{Kind: EvDone, Res: m.clusterResult(), WireBytes: wireBytes})
			}
		case frameNack:
			m, err := decodeNack(payload)
			if err != nil {
				c.fail()
				return
			}
			if ev := c.takePending(m.ID); ev != nil {
				ev(Event{Kind: EvNack, Reason: m.Reason, WireBytes: wireBytes})
			}
		case frameStats:
			m, err := decodeStats(payload, true)
			if err != nil {
				c.fail()
				return
			}
			c.mu.Lock()
			ch := c.statsWaiters[m.ReqID]
			delete(c.statsWaiters, m.ReqID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m.JSON
			}
		case frameBye:
			// The worker drained: every launched unit's result and every
			// refused unit's nack precede this frame in stream order, so
			// no pending unit remains ambiguous. Stop routing here; the
			// read loop keeps running until the worker closes.
			c.markDown()
		default:
			// Unknown frame kind from a same-version worker: protocol
			// corruption, treat as connection death.
			c.fail()
			return
		}
	}
}

func (c *workerConn) takePending(id uint64) func(Event) {
	c.mu.Lock()
	ev := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return ev
}

// markDown stops new sends to this node and tells the fabric, exactly
// once. In-flight units are untouched — their frames may still arrive.
func (c *workerConn) markDown() {
	c.mu.Lock()
	c.down = true
	c.mu.Unlock()
	c.downOnce.Do(func() { c.tr.fireDown(c.node) })
}

// fail handles connection death: every pending unit's fate is unknown,
// so each sheds with EvLost (never retried — the exactly-once write
// guarantee forbids re-executing a unit that may have committed).
func (c *workerConn) fail() {
	c.markDown()
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]func(Event))
	waiters := c.statsWaiters
	c.statsWaiters = make(map[uint64]chan []byte)
	c.mu.Unlock()
	c.shutdown()
	for _, ev := range pending {
		ev(Event{Kind: EvLost})
	}
	for _, ch := range waiters {
		close(ch)
	}
}

func (c *workerConn) shutdown() {
	c.failOnce.Do(func() {
		close(c.closeCh)
		c.conn.Close()
	})
}
