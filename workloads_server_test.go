package rhythm

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"rhythm/internal/cluster"
	"rhythm/internal/session"
)

// lockstep drives identical raw requests through a host-path reference
// server and a cohort server serially (host first, so state mutations
// commit in the same order on both sides) and asserts every response is
// byte-identical. The concatenated cohort transcript doubles as a
// determinism witness across pool configurations.
type lockstep struct {
	t          *testing.T
	host       *TCPServer
	hostConn   net.Conn
	devConn    net.Conn
	hostR      *bufio.Reader
	devR       *bufio.Reader
	transcript bytes.Buffer
}

// newLockstep boots a fresh host reference server (session geometry
// 4096, matching the cohort options the workload tests use) and dials
// both servers.
func newLockstep(t *testing.T, dev *CohortServer) *lockstep {
	t.Helper()
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { host.Close() })
	go host.Serve()
	ls := &lockstep{t: t, host: host}
	ls.hostConn = dialT(t, host.Addr())
	ls.devConn = dialT(t, dev.Addr())
	ls.hostR = bufio.NewReader(ls.hostConn)
	ls.devR = bufio.NewReader(ls.devConn)
	return ls
}

func (ls *lockstep) exchange(label, raw string) []byte {
	ls.t.Helper()
	if _, err := io.WriteString(ls.hostConn, raw); err != nil {
		ls.t.Fatal(err)
	}
	want := readRawResponse(ls.t, ls.hostR)
	if _, err := io.WriteString(ls.devConn, raw); err != nil {
		ls.t.Fatal(err)
	}
	got := readRawResponse(ls.t, ls.devR)
	if !bytes.Equal(want, got) {
		ls.t.Fatalf("%s: cohort response differs from host\nhost %d bytes: %.300q\ncohort %d bytes: %.300q",
			label, len(want), want, len(got), got)
	}
	ls.transcript.WriteString(label + "\n")
	ls.transcript.Write(got)
	return got
}

func rawGet(uri, cookie string) string {
	if cookie == "" {
		return fmt.Sprintf("GET %s HTTP/1.1\r\nHost: t\r\n\r\n", uri)
	}
	return fmt.Sprintf("GET %s HTTP/1.1\r\nHost: t\r\nCookie: %s\r\n\r\n", uri, cookie)
}

func rawPost(uri, cookie, body string) string {
	if cookie == "" {
		return fmt.Sprintf("POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", uri, len(body), body)
	}
	return fmt.Sprintf("POST %s HTTP/1.1\r\nHost: t\r\nCookie: %s\r\nContent-Length: %d\r\n\r\n%s",
		uri, cookie, len(body), body)
}

// cookieFrom extracts the "NAME=value" pair a Set-Cookie header issued.
func cookieFrom(t *testing.T, resp []byte, name string) string {
	t.Helper()
	for _, line := range strings.Split(string(resp), "\r\n") {
		if v, ok := strings.CutPrefix(line, "Set-Cookie: "); ok && strings.HasPrefix(v, name+"=") {
			return v
		}
	}
	t.Fatalf("response carries no %s cookie: %.300q", name, resp)
	return ""
}

// workloadCohortOpts is the shared cohort shape for the workload
// differential tests: serial lock-step traffic (single-request cohorts
// launched by the formation timeout) with the host server's session
// geometry so both sides issue identical session ids.
func workloadCohortOpts(devices int, plan *cluster.FaultPlan) CohortOptions {
	return CohortOptions{
		Devices:          devices,
		CohortSize:       8,
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096,
		FaultPlan:        plan,
	}
}

// driveEcom exercises every e-commerce type — catalog reads with and
// without a session, the session-creating cart add, the two-round-trip
// checkout, the variable-stage empty-cart checkout — plus the
// missing-parameter and missing-session error pages.
func driveEcom(ls *lockstep) {
	ls.exchange("ecom index", rawGet("/index.php", ""))
	ls.exchange("ecom browse", rawGet("/browse.php?cat=books", ""))
	ls.exchange("ecom browse no cat", rawGet("/browse.php", ""))
	ls.exchange("ecom search", rawGet("/search.php?q=lamp", ""))
	ls.exchange("ecom product", rawGet("/product.php?id=4242", ""))
	cart := ls.exchange("ecom cart_add", rawPost("/cart.php", "", "uid=9001&id=4242&qty=2"))
	cookie := cookieFrom(ls.t, cart, "EC_ID")
	ls.exchange("ecom index session", rawGet("/index.php", cookie))
	ls.exchange("ecom cart_add again", rawPost("/cart.php", cookie, "uid=9001&id=137&qty=1"))
	ls.exchange("ecom checkout", rawPost("/checkout.php", cookie, ""))
	ls.exchange("ecom checkout empty", rawPost("/checkout.php", cookie, ""))
	ls.exchange("ecom checkout no session", rawPost("/checkout.php", "", ""))
}

// driveTelemetry exercises every telemetry type against device stream
// dev — status, subscribe, ingest, poll (with frames, drained, and
// multi-subscriber fan-out) — plus the not-subscribed and bad-frame
// error pages.
func driveTelemetry(ls *lockstep, dev uint64) {
	d := strconv.FormatUint(dev, 10)
	ls.exchange("telemetry status empty", rawGet("/t/status?dev="+d, ""))
	ls.exchange("telemetry subscribe", rawGet("/t/subscribe?dev="+d+"&sub=1", ""))
	for i := 0; i < 5; i++ {
		ls.exchange(fmt.Sprintf("telemetry ingest %d", i),
			rawPost("/t/ingest", "", fmt.Sprintf("dev=%s&f=%04x", d, 0xa0+i)))
	}
	ls.exchange("telemetry poll", rawGet("/t/poll?dev="+d+"&sub=1", ""))
	ls.exchange("telemetry poll drained", rawGet("/t/poll?dev="+d+"&sub=1", ""))
	ls.exchange("telemetry subscribe 2", rawGet("/t/subscribe?dev="+d+"&sub=2", ""))
	ls.exchange("telemetry ingest late", rawPost("/t/ingest", "", "dev="+d+"&f=beef"))
	ls.exchange("telemetry poll sub2", rawGet("/t/poll?dev="+d+"&sub=2", ""))
	ls.exchange("telemetry poll sub1 late", rawGet("/t/poll?dev="+d+"&sub=1", ""))
	ls.exchange("telemetry status", rawGet("/t/status?dev="+d, ""))
	ls.exchange("telemetry poll unsubscribed", rawGet("/t/poll?dev="+d+"&sub=9", ""))
	ls.exchange("telemetry ingest bad frame", rawPost("/t/ingest", "", "dev="+d+"&f=zz"))
}

// driveMixed interleaves banking, e-commerce, and telemetry requests on
// one connection pair — the three workloads sharing devices, sessions
// arrays, and shard groups.
func driveMixed(ls *lockstep, dev *CohortServer) {
	t := ls.t
	uid, pw := ls.host.Seed(4444)
	if _, dpw := dev.Seed(4444); dpw != pw {
		t.Fatalf("password mismatch between host and cohort seeds")
	}
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	login := ls.exchange("bank login", rawPost("/login.php", "", body))
	bank := cookieFrom(t, login, "MY_ID")

	ls.exchange("ecom index", rawGet("/index.php", ""))
	ls.exchange("telemetry subscribe", rawGet("/t/subscribe?dev=5&sub=1", ""))
	ls.exchange("bank account_summary", rawGet("/account_summary.php", bank))
	cart := ls.exchange("ecom cart_add", rawPost("/cart.php", "", "uid=9001&id=55&qty=3"))
	ec := cookieFrom(t, cart, "EC_ID")
	ls.exchange("telemetry ingest", rawPost("/t/ingest", "", "dev=5&f=0001"))
	ls.exchange("bank transfer", rawGet("/transfer.php", bank))
	ls.exchange("ecom checkout", rawPost("/checkout.php", ec, ""))
	ls.exchange("telemetry poll", rawGet("/t/poll?dev=5&sub=1", ""))
	ls.exchange("bank post_transfer", rawPost("/post_transfer.php", bank, "from=0&to=1&amount=0.42"))
	ls.exchange("ecom product", rawGet("/product.php?id=55", ""))
	ls.exchange("telemetry status", rawGet("/t/status?dev=5", ""))
	ls.exchange("bank logout", rawGet("/logout.php", bank))
	ls.exchange("telemetry poll drained", rawGet("/t/poll?dev=5&sub=1", ""))
}

// TestCohortServerDifferentialEcomAllTypes: every e-commerce type must
// be byte-identical between the scalar host path and the cohort device
// pipeline — the same contract banking established in PR 2, now holding
// for a registry workload with its own store, buffers, and sessions.
func TestCohortServerDifferentialEcomAllTypes(t *testing.T) {
	dev := startCohortServer(t, workloadCohortOpts(1, nil))
	ls := newLockstep(t, dev)
	driveEcom(ls)
	st := dev.Stats()
	for _, name := range []string{"ecom/index", "ecom/browse", "ecom/search",
		"ecom/product_detail", "ecom/cart_add", "ecom/checkout"} {
		ts, ok := st.Types[name]
		if !ok {
			t.Fatalf("stats missing type %q after drive; have %v", name, st.Types)
		}
		if ts.Workload != "ecom" {
			t.Fatalf("type %q reports workload %q, want ecom", name, ts.Workload)
		}
	}
}

// TestCohortServerDifferentialTelemetryAllTypes: the telemetry types'
// byte-identity differential, including multi-subscriber fan-out and
// the error pages.
func TestCohortServerDifferentialTelemetryAllTypes(t *testing.T) {
	dev := startCohortServer(t, workloadCohortOpts(1, nil))
	ls := newLockstep(t, dev)
	driveTelemetry(ls, 11)
	st := dev.Stats()
	for _, name := range []string{"telemetry/ingest", "telemetry/subscribe",
		"telemetry/poll", "telemetry/status"} {
		ts, ok := st.Types[name]
		if !ok {
			t.Fatalf("stats missing type %q after drive; have %v", name, st.Types)
		}
		if ts.Workload != "telemetry" {
			t.Fatalf("type %q reports workload %q, want telemetry", name, ts.Workload)
		}
	}
}

// TestCohortServerMixedWorkloadDifferential: all three workloads
// interleaved on a four-device pool stay byte-identical to the host
// path, and the stats document namespaces every section by workload
// (the schema_version 4 contract).
func TestCohortServerMixedWorkloadDifferential(t *testing.T) {
	dev := startCohortServer(t, workloadCohortOpts(4, nil))
	ls := newLockstep(t, dev)
	driveMixed(ls, dev)
	st := dev.Stats()
	if want := []string{"banking", "ecom", "telemetry"}; !equalStrings(st.Workloads, want) {
		t.Fatalf("stats workloads = %v, want %v", st.Workloads, want)
	}
	for name, wantWorkload := range map[string]string{
		"login":            "banking", // banking keeps its bare legacy labels
		"ecom/cart_add":    "ecom",
		"telemetry/poll":   "telemetry",
		"telemetry/ingest": "telemetry",
	} {
		ts, ok := st.Types[name]
		if !ok {
			t.Fatalf("stats missing type %q after mixed drive", name)
		}
		if ts.Workload != wantWorkload {
			t.Fatalf("type %q reports workload %q, want %q", name, ts.Workload, wantWorkload)
		}
	}
	if st.Failovers != 0 || st.DeviceRetries != 0 {
		t.Fatalf("clean mixed run counted failovers=%d retries=%d", st.Failovers, st.DeviceRetries)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMixedWorkloadSimParallelismDeterminism: the full mixed drive
// (banking + ecom + telemetry on four devices) produces bit-identical
// transcripts whether the simulator runs kernel launches serially or
// eight-wide — the CohortOptions knob behind RHYTHM_SIM_PARALLELISM.
// Each run is additionally byte-checked against its own fresh host
// reference, and the -race CI leg runs this test with the checker on.
func TestMixedWorkloadSimParallelismDeterminism(t *testing.T) {
	var transcripts [][]byte
	for _, par := range []int{1, 8} {
		opts := workloadCohortOpts(4, nil)
		opts.SimParallelism = par
		dev := startCohortServer(t, opts)
		ls := newLockstep(t, dev)
		driveMixed(ls, dev)
		driveEcom(ls)
		driveTelemetry(ls, 11)
		transcripts = append(transcripts, append([]byte(nil), ls.transcript.Bytes()...))
	}
	if !bytes.Equal(transcripts[0], transcripts[1]) {
		t.Fatalf("mixed-workload transcripts differ between sim parallelism 1 and 8:\np1 %d bytes, p8 %d bytes",
			len(transcripts[0]), len(transcripts[1]))
	}
}

// pollSeqs parses a RHYTHM-T FRAMES page, asserts its lost counter is
// zero, checks each frame's payload matches its sequence number (the
// ingest loop publishes %04x of the seq), and returns the sequence
// numbers in page order.
func pollSeqs(t *testing.T, resp []byte) []uint64 {
	t.Helper()
	_, body, ok := strings.Cut(string(resp), "\r\n\r\n")
	if !ok {
		t.Fatalf("poll response has no body: %.300q", resp)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "RHYTHM-T FRAMES ") {
		t.Fatalf("not a frames page: %.300q", body)
	}
	if !strings.Contains(lines[0], " lost=0 ") {
		t.Fatalf("poll reported lost frames: %q", lines[0])
	}
	var seqs []uint64
	for _, line := range lines[1:] {
		// Dynamic page fields are padded to their fixed SIMT geometry;
		// trim the padding and skip pure-filler lines.
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, payload, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("bad frame line %q", line)
		}
		seq, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad frame seq in %q: %v", line, err)
		}
		if want := fmt.Sprintf("%04x", seq); payload != want {
			t.Fatalf("frame %d carries payload %q, want %q", seq, payload, want)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// TestTelemetryFanOutExactlyOnceAcrossFailover: losing the device that
// owns a telemetry stream's shard group mid-publish must not duplicate,
// drop, or reorder a single frame for either subscriber. Publishes
// commit at unit launch and only un-launched units transfer to the new
// owner, so both cursors see the full sequence exactly once, in order,
// with the broker's lost counter at zero throughout.
func TestTelemetryFanOutExactlyOnceAcrossFailover(t *testing.T) {
	const devID = 11
	target := session.BucketFor(devID, 256) % 4
	plan := &cluster.FaultPlan{Faults: []cluster.Fault{
		{Device: target, Kind: cluster.KindLoss, AfterUnits: 3},
	}}
	srv := startCohortServer(t, workloadCohortOpts(4, plan))
	conn := dialT(t, srv.Addr())
	r := bufio.NewReader(conn)
	send := func(raw string) []byte {
		t.Helper()
		if _, err := io.WriteString(conn, raw); err != nil {
			t.Fatal(err)
		}
		return readRawResponse(t, r)
	}
	d := strconv.Itoa(devID)
	send(rawGet("/t/subscribe?dev="+d+"&sub=1", ""))
	send(rawGet("/t/subscribe?dev="+d+"&sub=2", ""))

	// Publish frames 0..total-1, polling subscriber 1 along the way so
	// its drain interleaves with the failover; subscriber 2 drains only
	// at the end and must still see everything.
	const total = 30
	var got1, got2 []uint64
	for i := 0; i < total; i++ {
		resp := send(rawPost("/t/ingest", "", fmt.Sprintf("dev=%s&f=%04x", d, i)))
		if !bytes.Contains(resp, []byte("RHYTHM-T PUB dev="+d)) {
			t.Fatalf("ingest %d failed: %.300q", i, resp)
		}
		if i%7 == 3 {
			got1 = append(got1, pollSeqs(t, send(rawGet("/t/poll?dev="+d+"&sub=1", "")))...)
		}
	}
	drain := func(sub string, into *[]uint64) {
		for rounds := 0; rounds < 10; rounds++ {
			seqs := pollSeqs(t, send(rawGet("/t/poll?dev="+d+"&sub="+sub, "")))
			*into = append(*into, seqs...)
			if len(seqs) == 0 {
				return
			}
		}
		t.Fatalf("subscriber %s never drained", sub)
	}
	drain("1", &got1)
	drain("2", &got2)

	for name, got := range map[string][]uint64{"sub1": got1, "sub2": got2} {
		if len(got) != total {
			t.Fatalf("%s received %d frames, want %d: %v", name, len(got), total, got)
		}
		for i, seq := range got {
			if seq != uint64(i) {
				t.Fatalf("%s frame %d has seq %d — delivery not exactly-once in-order: %v", name, i, seq, got)
			}
		}
	}

	st := srv.Stats()
	if st.Failovers == 0 {
		t.Fatal("fault plan did not trigger a failover — the drive never exercised the transfer path")
	}
	var dead bool
	for _, dv := range st.Devices {
		if dv.ID == target {
			dead = dv.Health == "dead"
		}
	}
	if !dead {
		t.Fatalf("device %d not reported dead after loss fault", target)
	}
}
