package rhythm

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCohortServer boots a CohortServer on an ephemeral port and
// registers a drain on test cleanup.
func startCohortServer(t *testing.T, opts CohortOptions) *CohortServer {
	t.Helper()
	srv, err := NewCohortServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func dialT(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// readRawResponse reads one full HTTP response — status line, headers,
// and Content-Length body — returning the exact bytes for differential
// comparison. The X-Rhythm-Trace header is dropped: flight trace IDs
// are server-assigned in arrival order, which legitimately differs
// between the two servers (and across concurrent requests), while
// every other byte must match.
func readRawResponse(t *testing.T, r *bufio.Reader) []byte {
	t.Helper()
	var buf bytes.Buffer
	cl := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response: %v (got %q so far)", err, buf.String())
		}
		if !strings.HasPrefix(line, "X-Rhythm-Trace:") {
			buf.WriteString(line)
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(trimmed), "content-length:"); ok {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &cl)
		}
	}
	body := make([]byte, cl)
	if _, err := io.ReadFull(r, body); err != nil {
		t.Fatal(err)
	}
	buf.Write(body)
	return buf.Bytes()
}

// driveAllTypes drives the same request sequence through a fresh
// host-path TCPServer and the given cohort-mode server in lock step and
// asserts every response — headers, cookies, and page bytes — is
// identical. The sequence covers all 15 implemented request types plus
// the expired-session error page. The cohort server must use
// MaxSessions 4096 (the host server's session geometry) so both issue
// identical session ids. Returns the cohort server's stats after the
// drive.
func driveAllTypes(t *testing.T, dev *CohortServer) CohortServerStats {
	t.Helper()
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()

	hostConn := dialT(t, host.Addr())
	devConn := dialT(t, dev.Addr())
	hostR := bufio.NewReader(hostConn)
	devR := bufio.NewReader(devConn)

	// exchange sends the same raw request to both servers (host first,
	// serially, so any DB/session mutations happen in the same order)
	// and asserts byte-identical responses.
	exchange := func(label, raw string) []byte {
		t.Helper()
		if _, err := io.WriteString(hostConn, raw); err != nil {
			t.Fatal(err)
		}
		want := readRawResponse(t, hostR)
		if _, err := io.WriteString(devConn, raw); err != nil {
			t.Fatal(err)
		}
		got := readRawResponse(t, devR)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: cohort response differs from host\nhost %d bytes: %.300q\ncohort %d bytes: %.300q",
				label, len(want), want, len(got), got)
		}
		return got
	}

	uid, pw := host.Seed(7777)
	if _, dpw := dev.Seed(7777); dpw != pw {
		t.Fatalf("password mismatch: host %q cohort %q", pw, dpw)
	}

	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	login := exchange("login", fmt.Sprintf(
		"POST /login.php HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body))

	// Both servers issued the same session id (identical array geometry
	// + creation order); reuse it for the session'd requests.
	var cookie string
	for _, line := range strings.Split(string(login), "\r\n") {
		if v, ok := strings.CutPrefix(line, "Set-Cookie: "); ok {
			cookie = v
		}
	}
	if !strings.HasPrefix(cookie, "MY_ID=") {
		t.Fatalf("no session cookie in login response")
	}

	get := func(uri string) string {
		return fmt.Sprintf("GET %s HTTP/1.1\r\nHost: t\r\nCookie: %s\r\n\r\n", uri, cookie)
	}
	post := func(uri, body string) string {
		return fmt.Sprintf("POST %s HTTP/1.1\r\nHost: t\r\nCookie: %s\r\nContent-Length: %d\r\n\r\n%s",
			uri, cookie, len(body), body)
	}

	seq := []struct{ label, raw string }{
		{"account_summary", get("/account_summary.php")},
		{"add_payee", get("/add_payee.php")},
		{"bill_pay", get("/bill_pay.php")},
		{"bill_pay_status_output", get("/bill_pay_status_output.php")},
		{"change_profile", get("/change_profile.php")},
		{"check_detail_html", get("/check_detail_html.php?check_no=1234")},
		{"order_check", get("/order_check.php")},
		{"place_check_order", post("/place_check_order.php", "style=standard&quantity=100")},
		{"post_payee", post("/post_payee.php", "name=Vendor0001&account=P-000001")},
		{"post_transfer", post("/post_transfer.php", "from=0&to=1&amount=0.42")},
		{"profile", get("/profile.php")},
		{"transfer", get("/transfer.php")},
		{"quick_pay", post("/quick_pay.php", "payee1=Vendor0001&amount1=2.00&payee2=Vendor0002&amount2=3.25")},
		{"logout", get("/logout.php")},
		{"expired session", get("/profile.php")}, // error page, still identical
	}
	for _, s := range seq {
		exchange(s.label, s.raw)
	}
	return dev.Stats()
}

// TestCohortServerDifferentialAllTypes is the fixed-timeout byte
// identity drive: every request forms its own single-request cohort and
// launches by the formation timeout.
func TestCohortServerDifferentialAllTypes(t *testing.T) {
	dev := startCohortServer(t, CohortOptions{
		CohortSize:       8,
		MaxCohorts:       4,
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096, // same session geometry as NewTCPServer(4096)
	})
	st := driveAllTypes(t, dev)
	// 16 banking requests, each its own single-request cohort (serial
	// lock-step can never batch), all launched by the formation timeout.
	if st.CohortsFormed != 16 || st.CohortsTimedOut != 16 {
		t.Fatalf("cohorts formed=%d timed_out=%d, want 16/16", st.CohortsFormed, st.CohortsTimedOut)
	}
	if len(st.Types) != 15 {
		t.Fatalf("stats cover %d types, want 15", len(st.Types))
	}
}

// TestAdaptiveDifferentialHostFallback runs the same differential drive
// with the adaptive controller on and the crossover rate pinned so high
// that every type routes to the scalar host fallback. The pages must
// stay byte-identical to the reference host server — the fallback path
// runs the same services against the same sharded state — and every
// request must be accounted as a host fallback.
func TestAdaptiveDifferentialHostFallback(t *testing.T) {
	dev := startCohortServer(t, CohortOptions{
		CohortSize:      8,
		MaxCohorts:      4,
		RequestDeadline: 30 * time.Second,
		MaxSessions:     4096,
		SLO:             50 * time.Millisecond,
		CrossoverRate:   1e12, // no realistic rate exceeds this: always host
	})
	st := driveAllTypes(t, dev)
	if st.Adapt == nil {
		t.Fatal("stats missing adapt section with SLO set")
	}
	if st.HostFallbacks != 16 {
		t.Fatalf("host fallbacks = %d, want 16 (every banking request)", st.HostFallbacks)
	}
	if st.CohortsFormed != 0 {
		t.Fatalf("cohorts formed = %d, want 0 when everything host-routes", st.CohortsFormed)
	}
	var hostReqs uint64
	for _, ts := range st.Types {
		hostReqs += ts.HostRequests
	}
	if hostReqs != 16 {
		t.Fatalf("per-type host requests sum to %d, want 16", hostReqs)
	}
}

// TestAdaptiveDifferentialDeviceOnly runs the drive with the adaptive
// controller on but host fallback disabled (CrossoverRate < 0): every
// request must still batch through the device pipeline under the
// controller's windows, byte-identical to the host reference.
func TestAdaptiveDifferentialDeviceOnly(t *testing.T) {
	dev := startCohortServer(t, CohortOptions{
		CohortSize:      8,
		MaxCohorts:      4,
		RequestDeadline: 30 * time.Second,
		MaxSessions:     4096,
		SLO:             50 * time.Millisecond,
		CrossoverRate:   -1, // never route to host
	})
	st := driveAllTypes(t, dev)
	if st.Adapt == nil {
		t.Fatal("stats missing adapt section with SLO set")
	}
	if st.HostFallbacks != 0 {
		t.Fatalf("host fallbacks = %d, want 0 with fallback disabled", st.HostFallbacks)
	}
	if st.CohortsFormed != 16 {
		t.Fatalf("cohorts formed = %d, want 16", st.CohortsFormed)
	}
	if len(st.Types) != 15 {
		t.Fatalf("stats cover %d types, want 15", len(st.Types))
	}
}

// TestCohortServerBatchesConcurrent proves batching on the wire: N
// concurrent account_summary requests from distinct connections land in
// one cohort (occupancy > 1) and every response still matches the host
// path byte for byte.
func TestCohortServerBatchesConcurrent(t *testing.T) {
	const users = 6
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()

	dev := startCohortServer(t, CohortOptions{
		CohortSize:       64,
		MaxCohorts:       4,
		FormationTimeout: 100 * time.Millisecond, // wide window: one cohort
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096,
	})

	// Serial logins on both servers keep session-id creation order
	// identical.
	type client struct {
		conn   net.Conn
		r      *bufio.Reader
		cookie string
	}
	login := func(addr net.Addr, uid uint64, pw string) client {
		c := client{conn: dialT(t, addr)}
		c.r = bufio.NewReader(c.conn)
		body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
		fmt.Fprintf(c.conn, "POST /login.php HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
		resp := readRawResponse(t, c.r)
		for _, line := range strings.Split(string(resp), "\r\n") {
			if v, ok := strings.CutPrefix(line, "Set-Cookie: "); ok {
				c.cookie = v
			}
		}
		if c.cookie == "" {
			t.Fatalf("login for uid %d returned no cookie", uid)
		}
		return c
	}
	var hostClients, devClients [users]client
	for i := 0; i < users; i++ {
		uid, pw := host.Seed(uint64(9001 + i))
		dev.Seed(uid)
		hostClients[i] = login(host.Addr(), uid, pw)
		devClients[i] = login(dev.Addr(), uid, pw)
		if hostClients[i].cookie != devClients[i].cookie {
			t.Fatalf("session ids diverged for uid %d: %q vs %q", uid, hostClients[i].cookie, devClients[i].cookie)
		}
	}

	// Expected pages from the host path (account_summary is read-only,
	// so per-user content is order-independent).
	var want [users][]byte
	for i := range hostClients {
		fmt.Fprintf(hostClients[i].conn, "GET /account_summary.php HTTP/1.1\r\nHost: t\r\nCookie: %s\r\n\r\n", hostClients[i].cookie)
		want[i] = readRawResponse(t, hostClients[i].r)
	}

	// Concurrent burst at the cohort server: all requests inside one
	// formation window.
	var wg sync.WaitGroup
	got := make([][]byte, users)
	start := make(chan struct{})
	for i := range devClients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			fmt.Fprintf(devClients[i].conn, "GET /account_summary.php HTTP/1.1\r\nHost: t\r\nCookie: %s\r\n\r\n", devClients[i].cookie)
			got[i] = readRawResponse(t, devClients[i].r)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range got {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("user %d: batched cohort response differs from host path", i)
		}
	}
	st := dev.Stats()
	if st.MaxOccupancy < 2 {
		t.Fatalf("max occupancy %d: concurrent burst did not batch", st.MaxOccupancy)
	}
}

// TestCohortServerSingleRequestTimeout: the §3.1 formation timeout must
// fire for a cohort holding exactly one request.
func TestCohortServerSingleRequestTimeout(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		CohortSize:       32,
		FormationTimeout: 20 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})
	uid, pw := srv.Seed(1234)
	conn := dialT(t, srv.Addr())
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	startAt := time.Now()
	fmt.Fprintf(conn, "POST /login.php HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	resp := readRawResponse(t, bufio.NewReader(conn))
	if !bytes.Contains(resp, []byte("Login successful")) {
		t.Fatalf("timeout-launched cohort produced a bad page: %.200q", resp)
	}
	if waited := time.Since(startAt); waited < 20*time.Millisecond {
		t.Fatalf("response after %v, before the formation timeout", waited)
	}
	st := srv.Stats()
	if st.CohortsFormed != 1 || st.CohortsTimedOut != 1 || st.CohortsFilled != 0 {
		t.Fatalf("cohort stats formed=%d timeout=%d filled=%d, want 1/1/0",
			st.CohortsFormed, st.CohortsTimedOut, st.CohortsFilled)
	}
	if st.MeanOccupancy != 1 {
		t.Fatalf("mean occupancy %v, want 1", st.MeanOccupancy)
	}
}

// TestCohortServerShutdownFlushesPartial: Shutdown while a cohort is
// PartiallyFull (timeouts disabled, so it would otherwise wait forever)
// must flush it and deliver the real response before closing.
func TestCohortServerShutdownFlushesPartial(t *testing.T) {
	srv, err := NewCohortServer(CohortOptions{
		CohortSize:       32,
		FormationTimeout: -1, // never: only drain can launch this cohort
		RequestDeadline:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	uid, pw := srv.Seed(55)
	conn := dialT(t, srv.Addr())
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	fmt.Fprintf(conn, "POST /login.php HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body)

	// Let the request reach the pool, then drain.
	time.Sleep(100 * time.Millisecond)
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	resp := readRawResponse(t, bufio.NewReader(conn))
	if !bytes.Contains(resp, []byte("Login successful")) {
		t.Fatalf("drained cohort produced a bad page: %.200q", resp)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := srv.Stats(); st.CohortsFormed != 1 {
		t.Fatalf("cohorts formed = %d, want 1 (the drain flush)", st.CohortsFormed)
	}
	// The listener is gone.
	if _, err := net.Dial("tcp", srv.Addr().String()); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

// TestCohortServerRejectsWhenSaturated: with one context pinned by a
// never-launching cohort and no overflow allowance, a request of a
// different type must shed with 503 + Retry-After.
func TestCohortServerRejectsWhenSaturated(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		CohortSize:       4,
		MaxCohorts:       1,
		FormationTimeout: -1, // pin the only context as PartiallyFull
		OverflowLimit:    -1, // no parking: reject immediately
		RequestDeadline:  30 * time.Second,
	})

	conn1 := dialT(t, srv.Addr())
	fmt.Fprintf(conn1, "GET /account_summary.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
	time.Sleep(100 * time.Millisecond) // let it occupy the context

	conn2 := dialT(t, srv.Addr())
	fmt.Fprintf(conn2, "GET /profile.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
	resp := string(readRawResponse(t, bufio.NewReader(conn2)))
	if !strings.HasPrefix(resp, "HTTP/1.1 503 ") {
		t.Fatalf("saturated pool answered %.100q, want 503", resp)
	}
	if !strings.Contains(resp, "Retry-After: ") {
		t.Fatalf("503 without Retry-After: %.200q", resp)
	}
	st := srv.Stats()
	if st.RejectedPool != 1 {
		t.Fatalf("rejected_pool = %d, want 1", st.RejectedPool)
	}
	if st.AdmissionStalls == 0 {
		t.Fatal("pool admission stall not counted")
	}
	// conn1's parked request is answered by the cleanup Shutdown's drain
	// flush (delivery is asserted by TestCohortServerShutdownFlushesPartial).
}

// TestCohortServerRequestDeadline: a request stuck in formation past
// RequestDeadline gets a 504 and the connection stays usable.
func TestCohortServerRequestDeadline(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		CohortSize:       32,
		FormationTimeout: -1, // never launch: the deadline must fire
		RequestDeadline:  60 * time.Millisecond,
	})
	conn := dialT(t, srv.Addr())
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "GET /transfer.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
	resp := string(readRawResponse(t, r))
	if !strings.HasPrefix(resp, "HTTP/1.1 504 ") {
		t.Fatalf("deadline answered %.100q, want 504", resp)
	}
	if srv.Stats().DeadlineMisses != 1 {
		t.Fatalf("deadline_misses = %d, want 1", srv.Stats().DeadlineMisses)
	}
}

// TestCohortServerStatsEndpoint: /rhythm-stats serves JSON in both modes.
func TestCohortServerStatsEndpoint(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{FormationTimeout: 5 * time.Millisecond})
	conn := dialT(t, srv.Addr())
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "GET /rhythm-stats HTTP/1.1\r\nHost: t\r\n\r\n")
	resp := string(readRawResponse(t, r))
	if !strings.HasPrefix(resp, "HTTP/1.1 200 ") || !strings.Contains(resp, `"mode": "cohort"`) {
		t.Fatalf("cohort stats endpoint: %.200q", resp)
	}

	host := NewTCPServer(256)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()
	hconn := dialT(t, host.Addr())
	hr := bufio.NewReader(hconn)
	fmt.Fprintf(hconn, "GET /rhythm-stats HTTP/1.1\r\nHost: t\r\n\r\n")
	hresp := string(readRawResponse(t, hr))
	if !strings.HasPrefix(hresp, "HTTP/1.1 200 ") || !strings.Contains(hresp, `"mode": "host"`) {
		t.Fatalf("host stats endpoint: %.200q", hresp)
	}
}
