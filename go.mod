module rhythm

go 1.22

// Pin the CI toolchain: setup-go reads this file (go-version-file), so
// every job builds and gates allocations with the same compiler. The
// language level stays 1.22; alloc budgets are compiler-sensitive, so
// bump this and re-baseline BENCH_allocs.json together.
toolchain go1.24.0
