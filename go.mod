module rhythm

go 1.22
