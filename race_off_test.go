//go:build !race

package rhythm

const raceEnabled = false
