package rhythm

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rhythm/internal/fabric"
	"rhythm/internal/session"
	"rhythm/internal/simt"
)

// startFabricWorker boots one in-process `rhythmd -worker` node on an
// ephemeral port with the geometry a MaxSessions-4096 cohort frontend
// computes for its loopback nodes, so the tcp fabric's responses can be
// byte-compared against the loopback baseline.
func startFabricWorker(t *testing.T, devices, groups int) *fabric.Worker {
	t.Helper()
	w := fabric.NewWorker(fabric.WorkerConfig{
		Registry:              DefaultRegistry(),
		Devices:               devices,
		Groups:                groups,
		CohortSize:            8,
		SlotsPerDevice:        4,
		SessionBuckets:        256,
		SessionNodesPerBucket: 4096/256*4 + 4,
		Simt:                  simt.GTXTitan(),
	})
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(w.Close)
	return w
}

// loginGroupOwner reports the fabric node the uid's login shard group
// routes to in an n-node, one-device-per-node topology — computed on a
// throwaway fabric so a test can plant a node fault on the owner before
// building the real server.
func loginGroupOwner(t *testing.T, uid uint64, nodes int) int {
	t.Helper()
	fab, err := fabric.New(fabric.Config{Registry: DefaultRegistry(), Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	return fab.OwnerOf(session.BucketFor(uid, 256) % fab.GroupCount())
}

// TestFabricServerTCPDifferentialAllWorkloads: the full three-workload
// drive (banking + ecom + telemetry, every type including the error
// pages) must be byte-identical across the scalar host path, the
// loopback fabric, and a two-worker tcp fabric. Each fabric run is
// lock-step checked against its own fresh host reference, and the two
// concatenated transcripts are then compared byte-for-byte — the wire
// protocol may not perturb a single response byte.
func TestFabricServerTCPDifferentialAllWorkloads(t *testing.T) {
	drive := func(dev *CohortServer) []byte {
		ls := newLockstep(t, dev)
		driveMixed(ls, dev)
		driveEcom(ls)
		driveTelemetry(ls, 11)
		return append([]byte(nil), ls.transcript.Bytes()...)
	}

	loop := startCohortServer(t, workloadCohortOpts(4, nil))
	want := drive(loop)
	if st := loop.Stats(); st.Transport != "loopback" {
		t.Fatalf("loopback server reports transport %q", st.Transport)
	}

	// The tcp twin: the same 4 global groups and 4 devices, split across
	// two worker nodes.
	w1 := startFabricWorker(t, 2, 4)
	w2 := startFabricWorker(t, 2, 4)
	opts := workloadCohortOpts(4, nil)
	opts.WorkerAddrs = []string{w1.Addr(), w2.Addr()}
	remote := startCohortServer(t, opts)
	got := drive(remote)

	if !bytes.Equal(want, got) {
		t.Fatalf("tcp transcript differs from loopback: loopback %d bytes, tcp %d bytes",
			len(want), len(got))
	}
	st := remote.Stats()
	if st.Transport != "tcp" {
		t.Fatalf("remote server reports transport %q, want tcp", st.Transport)
	}
	if len(st.Nodes) != 2 {
		t.Fatalf("stats report %d nodes, want 2", len(st.Nodes))
	}
	if st.NodeFailovers != 0 || st.NodeRetries != 0 || st.LostUnits != 0 {
		t.Fatalf("clean tcp run counted node_failovers=%d node_retries=%d lost_units=%d",
			st.NodeFailovers, st.NodeRetries, st.LostUnits)
	}
	var dispatched uint64
	for _, nd := range st.Nodes {
		if nd.Health != "up" {
			t.Fatalf("node %d health %q, want up", nd.ID, nd.Health)
		}
		if nd.Link.SentBytes == 0 && nd.Dispatched > 0 {
			t.Fatalf("node %d dispatched %d units but counted no wire bytes", nd.ID, nd.Dispatched)
		}
		dispatched += nd.Dispatched
	}
	if dispatched == 0 {
		t.Fatal("no units crossed the wire")
	}
}

// TestFabricServerNodeKillFailover: a whole-node loss mid-session on
// the loopback fabric must fail its groups over with every response
// still byte-identical to the host path, the Besim transfer committing
// exactly once, and zero lost units. The fault trips on the login —
// the first unit routed to the doomed node — so nothing ever executes
// there and the exactly-once guarantee is the interesting one: the
// re-routed session's later post_transfer must not double-commit.
func TestFabricServerNodeKillFailover(t *testing.T) {
	uid := differentialUIDs[0]
	target := loginGroupOwner(t, uid, 2)
	dev := startCohortServer(t, CohortOptions{
		Devices:          1,
		Nodes:            2,
		CohortSize:       8,
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096,
		NodeFaultPlan: &fabric.NodeFaultPlan{Faults: []fabric.NodeFault{
			{Node: target, AfterUnits: 0},
		}},
		FlightSlow: time.Nanosecond, // promote every completed request
	})
	var mu sync.Mutex
	writes := map[uint64]int{}
	if !dev.fab.SetWriteHook(func(u uint64) {
		mu.Lock()
		writes[u]++
		mu.Unlock()
	}) {
		t.Fatal("loopback fabric refused the write hook")
	}

	ls := newLockstep(t, dev)
	_, pw := ls.host.Seed(uid)
	dev.Seed(uid)
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	login := ls.exchange("login", rawPost("/login.php", "", body))
	cookie := cookieFrom(t, login, "MY_ID")
	ls.exchange("account_summary", rawGet("/account_summary.php", cookie))
	ls.exchange("transfer form", rawGet("/transfer.php", cookie))
	ls.exchange("post_transfer", rawPost("/post_transfer.php", cookie, "from=0&to=1&amount=0.17"))
	ls.exchange("summary after write", rawGet("/account_summary.php", cookie))
	ls.exchange("logout", rawGet("/logout.php", cookie))

	mu.Lock()
	committed := writes[uid]
	mu.Unlock()
	if committed != 1 {
		t.Fatalf("besim committed %d writes for uid %d across the failover, want exactly 1", committed, uid)
	}

	st := dev.Stats()
	if st.NodeFailovers != 1 {
		t.Fatalf("node_failovers = %d, want 1", st.NodeFailovers)
	}
	if st.NodeRetries == 0 {
		t.Fatal("the re-routed login counted no node retry")
	}
	if st.LostUnits != 0 {
		t.Fatalf("lost_units = %d, want 0 (quiesce completes or nacks, never loses)", st.LostUnits)
	}
	var down, upGroups int
	for _, nd := range st.Nodes {
		switch nd.Health {
		case "down":
			down++
			if nd.ID != target {
				t.Fatalf("node %d reported down, want %d", nd.ID, target)
			}
			if len(nd.Groups) != 0 {
				t.Fatalf("dead node %d still owns groups %v", nd.ID, nd.Groups)
			}
		case "up":
			upGroups += len(nd.Groups)
		}
	}
	if down != 1 {
		t.Fatalf("%d nodes down, want 1", down)
	}
	if upGroups != 2 {
		t.Fatalf("survivor owns %d groups, want all 2", upGroups)
	}

	// The §15 trail: the re-routed login's flight record shows the node
	// hop as attempts > 1, same as a device failover would.
	doc := fetchFlightDoc(t, dev.Addr())
	var hop bool
	for _, rec := range doc.Records {
		if rec.Status == "ok" && rec.Attempts >= 2 {
			hop = true
		}
	}
	if !hop {
		t.Fatalf("no promoted record shows the node hop (attempts >= 2); records: %+v", doc.Records)
	}
}

// TestFabricServerTCPNodeKillFailover: the same mid-session node loss
// over the tcp transport — the doomed worker quiesces, the login
// re-routes to the surviving worker, responses stay byte-identical,
// and the Besim write on the surviving worker's cluster commits
// exactly once.
func TestFabricServerTCPNodeKillFailover(t *testing.T) {
	uid := differentialUIDs[0]
	target := loginGroupOwner(t, uid, 2)
	w1 := startFabricWorker(t, 1, 2)
	w2 := startFabricWorker(t, 1, 2)
	workers := []*fabric.Worker{w1, w2}

	var mu sync.Mutex
	writes := map[uint64]int{}
	for _, w := range workers {
		w.Cluster().SetWriteHook(func(u uint64) {
			mu.Lock()
			writes[u]++
			mu.Unlock()
		})
	}

	dev := startCohortServer(t, CohortOptions{
		CohortSize:       8,
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096,
		WorkerAddrs:      []string{w1.Addr(), w2.Addr()},
		NodeFaultPlan: &fabric.NodeFaultPlan{Faults: []fabric.NodeFault{
			{Node: target, AfterUnits: 0},
		}},
	})

	ls := newLockstep(t, dev)
	_, pw := ls.host.Seed(uid)
	dev.Seed(uid)
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	login := ls.exchange("login", rawPost("/login.php", "", body))
	cookie := cookieFrom(t, login, "MY_ID")
	ls.exchange("account_summary", rawGet("/account_summary.php", cookie))
	ls.exchange("post_transfer", rawPost("/post_transfer.php", cookie, "from=0&to=1&amount=0.42"))
	ls.exchange("summary after write", rawGet("/account_summary.php", cookie))
	ls.exchange("logout", rawGet("/logout.php", cookie))

	mu.Lock()
	committed := writes[uid]
	mu.Unlock()
	if committed != 1 {
		t.Fatalf("besim committed %d writes for uid %d across the tcp failover, want exactly 1", committed, uid)
	}
	if !workers[target].Quiescing() {
		t.Fatalf("doomed worker %d never began its quiesce drain", target)
	}

	st := dev.Stats()
	if st.Transport != "tcp" {
		t.Fatalf("transport %q, want tcp", st.Transport)
	}
	if st.NodeFailovers != 1 || st.NodeRetries == 0 {
		t.Fatalf("node_failovers=%d node_retries=%d, want 1/>=1", st.NodeFailovers, st.NodeRetries)
	}
	if st.LostUnits != 0 {
		t.Fatalf("lost_units = %d, want 0", st.LostUnits)
	}
}

// TestFabricServerLinkSaturationSheds: a node link budgeted below a
// single request's modeled bus bytes must shed with the 503 path and
// surface the shed in /v1/stats (link_sheds, workload_sheds) and the
// per-node /v1/topology document.
func TestFabricServerLinkSaturationSheds(t *testing.T) {
	dev := startCohortServer(t, CohortOptions{
		CohortSize:       8,
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096,
		LinkBps:          20, // burst = 1 byte: nothing fits
	})
	uid, pw := dev.Seed(9911)
	conn := dialT(t, dev.Addr())
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	fmt.Fprintf(conn, "POST /login.php HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	resp := readRawResponse(t, bufio.NewReader(conn))
	if !bytes.HasPrefix(resp, []byte("HTTP/1.1 503 ")) {
		t.Fatalf("saturated link answered %.100q, want 503", resp)
	}

	st := dev.Stats()
	if st.LinkSheds == 0 {
		t.Fatal("stats counted no link sheds")
	}
	if st.WorkloadSheds["banking"] == 0 {
		t.Fatalf("workload_sheds = %v, want banking > 0", st.WorkloadSheds)
	}
	topo := scrape(t, dev.Addr(), TopologyPathV1)
	if !strings.HasPrefix(topo, "HTTP/1.1 200 ") {
		t.Fatalf("%s answered %.100q, want 200", TopologyPathV1, topo)
	}
	if !strings.Contains(topo, `"sheds": 1`) {
		t.Fatalf("topology document does not expose the link shed:\n%.500s", topo)
	}
	if !strings.Contains(topo, `"budget_gbps"`) {
		t.Fatalf("topology document has no link budget field:\n%.500s", topo)
	}
}
