package rhythm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"rhythm/internal/cluster"
	"rhythm/internal/fabric"
)

// flightTestDoc mirrors the /v1/debug/flight JSON document for test
// assertions (internal/flight Snapshot.JSON).
type flightTestDoc struct {
	Total    uint64            `json:"total"`
	Promoted uint64            `json:"promoted"`
	ByReason map[string]uint64 `json:"by_reason"`
	RingSize int               `json:"ring_size"`
	Records  []struct {
		TraceID         uint64   `json:"trace_id"`
		Type            string   `json:"type"`
		LatencyUs       float64  `json:"latency_us"`
		Status          string   `json:"status"`
		Reason          string   `json:"reason"`
		Device          int      `json:"device"`
		Attempts        int      `json:"attempts"`
		HostExec        bool     `json:"host_exec"`
		CohortSize      int      `json:"cohort_size"`
		LaunchReason    string   `json:"launch_reason"`
		FormationWaitUs float64  `json:"formation_wait_us"`
		LaunchSeqs      []uint64 `json:"launch_seqs"`
	} `json:"records"`
}

// fetchFlightDoc scrapes /v1/debug/flight and parses the document.
func fetchFlightDoc(t *testing.T, addr net.Addr) flightTestDoc {
	t.Helper()
	resp := scrape(t, addr, FlightPathV1)
	if !strings.HasPrefix(resp, "HTTP/1.1 200 ") {
		t.Fatalf("%s answered %.100q, want 200", FlightPathV1, resp)
	}
	_, body, _ := strings.Cut(resp, "\r\n\r\n")
	var doc flightTestDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("flight document is not valid JSON: %v\n%s", err, body)
	}
	return doc
}

// readResponseKeepTrace reads one full response like readRawResponse but
// keeps the X-Rhythm-Trace header and returns its value separately.
func readResponseKeepTrace(t *testing.T, r *bufio.Reader) (resp, trace string) {
	t.Helper()
	var b strings.Builder
	cl := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		b.WriteString(line)
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break
		}
		if v, ok := strings.CutPrefix(trimmed, "X-Rhythm-Trace: "); ok {
			trace = v
		}
		if v, ok := strings.CutPrefix(strings.ToLower(trimmed), "content-length:"); ok {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &cl)
		}
	}
	body := make([]byte, cl)
	for read := 0; read < cl; {
		n, err := r.Read(body[read:])
		if err != nil {
			t.Fatalf("reading body: %v", err)
		}
		read += n
	}
	b.Write(body)
	return b.String(), trace
}

// waitForAnomalies polls until the cohort server's flight recorder has
// promoted exactly want records (finishing happens after the response
// write, so a client can observe the response first).
func waitForAnomalies(t *testing.T, srv *CohortServer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := srv.Stats().FlightAnomalies
		if got == want {
			return
		}
		if got > want || time.Now().After(deadline) {
			t.Fatalf("flight anomalies = %d, want exactly %d", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFlightTraceHeaderEndToEnd: every banking response in both modes
// carries a server-assigned X-Rhythm-Trace header; the debug and
// observability endpoints do not (they are not flight-recorded).
func TestFlightTraceHeaderEndToEnd(t *testing.T) {
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()

	dev := startCohortServer(t, CohortOptions{
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})

	for _, addr := range []net.Addr{host.Addr(), dev.Addr()} {
		conn := dialT(t, addr)
		r := bufio.NewReader(conn)
		// An expired-session error page is still a classified banking
		// request, so it is flight-recorded like any other.
		fmt.Fprintf(conn, "GET /profile.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
		resp, trace := readResponseKeepTrace(t, r)
		if !strings.HasPrefix(resp, "HTTP/1.1 ") {
			t.Fatalf("profile answered %.100q", resp)
		}
		if trace == "" {
			t.Fatalf("banking response has no X-Rhythm-Trace header:\n%.300s", resp)
		}
		var id uint64
		if _, err := fmt.Sscanf(trace, "%d", &id); err != nil || id == 0 {
			t.Fatalf("X-Rhythm-Trace %q is not a positive integer", trace)
		}

		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", HealthPathV1)
		resp, trace = readResponseKeepTrace(t, r)
		if !strings.HasPrefix(resp, "HTTP/1.1 200 ") {
			t.Fatalf("health answered %.100q", resp)
		}
		if trace != "" {
			t.Fatalf("observability endpoint unexpectedly flight-recorded (trace %s)", trace)
		}
	}
}

// TestFlightHealthEndpoints: /v1/health answers the burn-rate document
// on both modes, and /v1/debug/flight answers the anomaly-ring document
// (JSON and Chrome formats, with ?n= bounding).
func TestFlightHealthEndpoints(t *testing.T) {
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()

	dev := startCohortServer(t, CohortOptions{
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})
	uidH, pwH := host.Seed(9301)
	uidD, pwD := dev.Seed(9301)
	loginAndBrowse(t, host.Addr(), uidH, pwH)
	loginAndBrowse(t, dev.Addr(), uidD, pwD)

	for _, addr := range []net.Addr{host.Addr(), dev.Addr()} {
		resp := scrape(t, addr, HealthPathV1)
		if !strings.HasPrefix(resp, "HTTP/1.1 200 ") {
			t.Fatalf("%s answered %.100q, want 200", HealthPathV1, resp)
		}
		_, body, _ := strings.Cut(resp, "\r\n\r\n")
		var health struct {
			Schema    int     `json:"schema_version"`
			State     string  `json:"state"`
			Objective float64 `json:"objective"`
			FastBurn  float64 `json:"fast_burn"`
			Types     []struct {
				Type  string `json:"type"`
				Total uint64 `json:"total_fast_window"`
			} `json:"types"`
		}
		if err := json.Unmarshal([]byte(body), &health); err != nil {
			t.Fatalf("health document is not valid JSON: %v\n%s", err, body)
		}
		if health.Schema != StatsSchemaVersion {
			t.Fatalf("health schema_version = %d, want %d", health.Schema, StatsSchemaVersion)
		}
		switch health.State {
		case "ok", "warn", "critical":
		default:
			t.Fatalf("health state %q not in {ok,warn,critical}", health.State)
		}
		if health.Objective <= 0 || health.Objective >= 1 {
			t.Fatalf("health objective = %v, want (0,1)", health.Objective)
		}
		var total uint64
		for _, ty := range health.Types {
			total += ty.Total
		}
		if total == 0 {
			t.Fatalf("health reports zero requests after traffic:\n%s", body)
		}

		doc := fetchFlightDoc(t, addr)
		if doc.Total == 0 {
			t.Fatal("flight recorder saw no requests after traffic")
		}
		if doc.RingSize <= 0 {
			t.Fatalf("flight ring_size = %d", doc.RingSize)
		}
		if chromeResp := scrape(t, addr, FlightPathV1+"?format=chrome&n=5"); !strings.Contains(chromeResp, "traceEvents") {
			t.Fatalf("flight chrome export missing traceEvents: %.200q", chromeResp)
		}
		if bad := scrape(t, addr, FlightPathV1+"?n=oops"); !strings.HasPrefix(bad, "HTTP/1.1 400 ") {
			t.Fatalf("bad n answered %.100q, want 400", bad)
		}
	}
}

// TestFlightShedPromotesExactlyOne: a request shed by the saturated pool
// promotes exactly one anomaly record with reason "shed" — the pinned
// request still in formation is not finished, and the shed 503 itself
// carries the trace ID that names the record.
func TestFlightShedPromotesExactlyOne(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		CohortSize:       4,
		MaxCohorts:       1,
		FormationTimeout: -1, // pin the only context as PartiallyFull
		OverflowLimit:    -1, // no parking: reject immediately
		RequestDeadline:  30 * time.Second,
	})

	conn1 := dialT(t, srv.Addr())
	fmt.Fprintf(conn1, "GET /account_summary.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
	time.Sleep(100 * time.Millisecond) // let it occupy the context

	conn2 := dialT(t, srv.Addr())
	r2 := bufio.NewReader(conn2)
	fmt.Fprintf(conn2, "GET /profile.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
	resp, trace := readResponseKeepTrace(t, r2)
	if !strings.HasPrefix(resp, "HTTP/1.1 503 ") {
		t.Fatalf("saturated pool answered %.100q, want 503", resp)
	}
	if trace == "" {
		t.Fatal("shed 503 carries no X-Rhythm-Trace header")
	}

	// The handler finishes the flight record after writing the 503, so
	// the count can trail the response by a beat.
	waitForAnomalies(t, srv, 1)
	doc := fetchFlightDoc(t, srv.Addr())
	if len(doc.Records) != 1 {
		t.Fatalf("flight ring holds %d records, want 1: %+v", len(doc.Records), doc.Records)
	}
	rec := doc.Records[0]
	if rec.Reason != "shed" || rec.Status != "shed" {
		t.Fatalf("shed record has reason=%q status=%q, want shed/shed", rec.Reason, rec.Status)
	}
	if fmt.Sprint(rec.TraceID) != trace {
		t.Fatalf("promoted trace_id %d does not match the 503's X-Rhythm-Trace %s", rec.TraceID, trace)
	}
	if rec.Type != "profile" {
		t.Fatalf("shed record type = %q, want profile", rec.Type)
	}
}

// TestFlightDeadlinePromotesExactlyOne: a request that misses its
// deadline in formation promotes exactly one record with reason
// "deadline"; the never-launching pinned cohort contributes nothing.
func TestFlightDeadlinePromotesExactlyOne(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		CohortSize:       32,
		FormationTimeout: -1, // never launch: the deadline must fire
		RequestDeadline:  60 * time.Millisecond,
	})
	conn := dialT(t, srv.Addr())
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "GET /transfer.php HTTP/1.1\r\nHost: t\r\nCookie: MY_ID=0-0-0\r\n\r\n")
	resp, trace := readResponseKeepTrace(t, r)
	if !strings.HasPrefix(resp, "HTTP/1.1 504 ") {
		t.Fatalf("deadline answered %.100q, want 504", resp)
	}
	if trace == "" {
		t.Fatal("deadline 504 carries no X-Rhythm-Trace header")
	}

	if st := srv.Stats(); st.FlightAnomalies != 1 {
		t.Fatalf("flight anomalies = %d, want exactly 1 (the deadline miss)", st.FlightAnomalies)
	}
	doc := fetchFlightDoc(t, srv.Addr())
	if len(doc.Records) != 1 {
		t.Fatalf("flight ring holds %d records, want 1: %+v", len(doc.Records), doc.Records)
	}
	rec := doc.Records[0]
	if rec.Reason != "deadline" || rec.Status != "deadline" {
		t.Fatalf("deadline record has reason=%q status=%q, want deadline/deadline", rec.Reason, rec.Status)
	}
	if rec.LatencyUs < 50e3 {
		t.Fatalf("deadline record latency %.1fus is below the 60ms deadline", rec.LatencyUs)
	}
	if doc.ByReason["deadline"] != 1 {
		t.Fatalf("by_reason = %v, want deadline=1", doc.ByReason)
	}
}

// TestFlightFailoverRecordsHops: with a device-loss fault injected and a
// threshold that promotes everything, the flight records expose the
// failover trail — the affected request shows Attempts > 1 with its
// device, cohort size, formation wait, and linked launch seqs, which is
// the §15 debugging contract: a tail request can be traced to the
// device hop that caused it.
func TestFlightFailoverRecordsHops(t *testing.T) {
	target := faultTargetDevice(differentialUIDs[0], 4)
	plan := &cluster.FaultPlan{Faults: []cluster.Fault{
		{Device: target, Kind: cluster.KindLoss, AfterUnits: 1},
	}}
	opts := multiDeviceOpts(plan)
	opts.FlightSlow = time.Nanosecond // promote every completed request
	dev := startCohortServer(t, opts)
	driveDifferential(t, dev, differentialUIDs)

	if dev.Stats().Failovers == 0 {
		t.Fatal("device loss did not count a failover")
	}
	doc := fetchFlightDoc(t, dev.Addr())
	if doc.ByReason["slow"] == 0 {
		t.Fatalf("tiny FlightSlow promoted nothing: %+v", doc.ByReason)
	}
	var hop bool
	for _, rec := range doc.Records {
		if rec.Status != "ok" || rec.Attempts < 2 {
			continue
		}
		hop = true
		if rec.Device < 0 {
			t.Fatalf("failover record has no device: %+v", rec)
		}
		if rec.CohortSize < 1 || rec.LaunchReason == "" {
			t.Fatalf("failover record missing cohort formation outcome: %+v", rec)
		}
		if len(rec.LaunchSeqs) == 0 {
			t.Fatalf("failover record has no kernel launch linkage: %+v", rec)
		}
		if rec.FormationWaitUs < 0 {
			t.Fatalf("failover record has negative formation wait: %+v", rec)
		}
	}
	if !hop {
		t.Fatalf("no promoted record shows a failover hop (attempts > 1); records: %+v", doc.Records)
	}
}

// TestFlightNodeLossRecordsHops: the §15 trail must survive a WHOLE-NODE
// loss, not just a device loss — with a node fault planted on the node
// owning the first user's login group, the re-routed request's promoted
// record shows attempts > 1 exactly like a device hop, with the same
// causal fields filled in. This is the fabric extension of
// TestFlightFailoverRecordsHops: Result.Hops folds node moves into the
// attempt trail.
func TestFlightNodeLossRecordsHops(t *testing.T) {
	uid := differentialUIDs[0]
	target := loginGroupOwner(t, uid, 2)
	dev := startCohortServer(t, CohortOptions{
		Devices:          1,
		Nodes:            2,
		CohortSize:       8,
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
		MaxSessions:      4096,
		NodeFaultPlan: &fabric.NodeFaultPlan{Faults: []fabric.NodeFault{
			{Node: target, AfterUnits: 0},
		}},
		FlightSlow: time.Nanosecond, // promote every completed request
	})
	driveDifferential(t, dev, differentialUIDs)

	st := dev.Stats()
	if st.NodeFailovers == 0 {
		t.Fatal("node fault did not count a failover")
	}
	doc := fetchFlightDoc(t, dev.Addr())
	if doc.ByReason["slow"] == 0 {
		t.Fatalf("tiny FlightSlow promoted nothing: %+v", doc.ByReason)
	}
	var hop bool
	for _, rec := range doc.Records {
		if rec.Status != "ok" || rec.Attempts < 2 {
			continue
		}
		hop = true
		if rec.Device < 0 {
			t.Fatalf("node-loss record has no device: %+v", rec)
		}
		if rec.CohortSize < 1 || rec.LaunchReason == "" {
			t.Fatalf("node-loss record missing cohort formation outcome: %+v", rec)
		}
		if len(rec.LaunchSeqs) == 0 {
			t.Fatalf("node-loss record has no kernel launch linkage: %+v", rec)
		}
	}
	if !hop {
		t.Fatalf("no promoted record shows a node hop (attempts > 1); records: %+v", doc.Records)
	}
}

// TestTraceCaptureConcurrent429: a ?secs=N trace capture racing another
// in-flight capture is bounded — the loser answers 429 with Retry-After
// instead of stacking a second blocking window (both modes).
func TestTraceCaptureConcurrent429(t *testing.T) {
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()

	dev := startCohortServer(t, CohortOptions{
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})

	for _, addr := range []net.Addr{host.Addr(), dev.Addr()} {
		done := make(chan string, 1)
		go func() {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				done <- ""
				return
			}
			defer conn.Close()
			fmt.Fprintf(conn, "GET %s?secs=1 HTTP/1.1\r\nHost: t\r\n\r\n", TracePath)
			done <- string(readRawResponse(t, bufio.NewReader(conn)))
		}()
		time.Sleep(200 * time.Millisecond) // the first capture is now blocking

		second := scrape(t, addr, TracePath+"?secs=1")
		if !strings.HasPrefix(second, "HTTP/1.1 429 ") {
			t.Fatalf("concurrent capture answered %.100q, want 429", second)
		}
		if !strings.Contains(second, "Retry-After: ") {
			t.Fatalf("429 without Retry-After: %.200q", second)
		}

		first := <-done
		if !strings.HasPrefix(first, "HTTP/1.1 200 ") {
			t.Fatalf("original capture answered %.100q, want 200", first)
		}
		// The guard released: a fresh capture succeeds.
		if again := scrape(t, addr, TracePath); !strings.HasPrefix(again, "HTTP/1.1 200 ") {
			t.Fatalf("post-capture request answered %.100q, want 200", again)
		}
	}
}
