package rhythm

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// startNew boots a server through the rhythm.New construction path on
// an ephemeral port and registers a drain on test cleanup.
func startNew(t *testing.T, opts ...Option) Server {
	t.Helper()
	srv, err := New("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv
}

// get issues one GET over a fresh connection and returns the raw
// response bytes.
func get(t *testing.T, srv Server, path string) []byte {
	t.Helper()
	conn := dialT(t, srv.Addr())
	if _, err := io.WriteString(conn, fmt.Sprintf("GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)); err != nil {
		t.Fatal(err)
	}
	return readRawResponse(t, bufio.NewReader(conn))
}

// TestNewHostServer covers the WithHostExecution path: the unified
// constructor, the Snapshot wrapper, and the versioned control plane
// with its legacy alias.
func TestNewHostServer(t *testing.T) {
	srv := startNew(t, WithHostExecution())
	if snap := srv.Snapshot(); snap.Mode != "host" || snap.Host == nil || snap.Cohort != nil {
		t.Fatalf("host snapshot wrong: %+v", snap)
	}
	for _, path := range []string{StatsPathV1, StatsPath} {
		body := string(get(t, srv, path))
		if !strings.Contains(body, `"schema_version": 5`) {
			t.Fatalf("%s missing schema_version 5:\n%s", path, body)
		}
		if !strings.Contains(body, `"mode": "host"`) {
			t.Fatalf("%s missing host mode:\n%s", path, body)
		}
	}
	for _, path := range []string{MetricsPathV1, MetricsPath} {
		if body := string(get(t, srv, path)); !strings.Contains(body, "rhythm_build_info") {
			t.Fatalf("%s not a metrics document:\n%.300s", path, body)
		}
	}
	for _, path := range []string{TracePathV1, TracePath} {
		if body := string(get(t, srv, path)); !strings.Contains(body, "traceEvents") {
			t.Fatalf("%s not a trace document:\n%.300s", path, body)
		}
	}
	if snap := srv.Snapshot(); snap.Served() == 0 {
		t.Fatal("snapshot counted no served requests")
	}
}

// TestNewCohortServer covers the default (cohort) path with the
// adaptive controller enabled: options plumb through to CohortOptions,
// Snapshot carries the cohort stats with the adapt section, and both
// stats paths answer with the versioned schema.
func TestNewCohortServer(t *testing.T) {
	srv := startNew(t,
		WithDevices(1),
		WithFormation(8, 4, 2*time.Millisecond),
		WithRequestDeadline(30*time.Second),
		WithSLO(50*time.Millisecond),
		WithCrossoverRate(-1),
	)
	snap := srv.Snapshot()
	if snap.Mode != "cohort" || snap.Cohort == nil || snap.Host != nil {
		t.Fatalf("cohort snapshot wrong mode: %+v", snap.Mode)
	}
	if snap.Cohort.SchemaVersion != StatsSchemaVersion {
		t.Fatalf("schema version = %d, want %d", snap.Cohort.SchemaVersion, StatsSchemaVersion)
	}
	if snap.Cohort.Adapt == nil {
		t.Fatal("WithSLO did not enable the adaptive controller")
	}
	for _, path := range []string{StatsPathV1, StatsPath} {
		body := string(get(t, srv, path))
		if !strings.Contains(body, `"schema_version": 5`) || !strings.Contains(body, `"mode": "cohort"`) {
			t.Fatalf("%s wrong stats document:\n%.300s", path, body)
		}
		if !strings.Contains(body, `"adapt"`) {
			t.Fatalf("%s missing adapt section:\n%.300s", path, body)
		}
		if !strings.Contains(body, `"transport": "loopback"`) || !strings.Contains(body, `"nodes"`) {
			t.Fatalf("%s missing fabric topology section:\n%.300s", path, body)
		}
	}
	// The ?schema=4 alias renders the pre-fabric document for v4
	// readers: version stamp 4 and no topology fields.
	legacy := string(get(t, srv, StatsPathV1+"?schema=4"))
	if !strings.Contains(legacy, `"schema_version": 4`) {
		t.Fatalf("?schema=4 missing legacy version stamp:\n%.300s", legacy)
	}
	for _, banned := range []string{`"transport"`, `"nodes"`, `"workload_sheds"`} {
		if strings.Contains(legacy, banned) {
			t.Fatalf("?schema=4 leaked v5 field %s:\n%.300s", banned, legacy)
		}
	}
	// /v1/topology is the node-level view.
	topo := string(get(t, srv, TopologyPathV1))
	if !strings.Contains(topo, `"transport": "loopback"`) || !strings.Contains(topo, `"health": "up"`) {
		t.Fatalf("topology document wrong:\n%.300s", topo)
	}
}

// TestDeprecatedShims pins the pre-v2 construction surface: NewServer
// still builds the offline simulator (now SimServer) and serves a
// saturation run, and the concrete NewTCPServer/NewCohortServer
// constructors still exist for callers that bypass rhythm.New.
func TestDeprecatedShims(t *testing.T) {
	var s *SimServer = NewServer(Options{CohortSize: 64, MaxCohorts: 2, Sessions: 256})
	st := s.Serve(s.GenerateMixed(256))
	if st.Completed != 256 {
		t.Fatalf("shimmed NewServer run completed %d of 256: %+v", st.Completed, st)
	}
	// Concrete constructors remain the escape hatch under rhythm.New.
	if srv := NewTCPServer(4096); srv == nil {
		t.Fatal("NewTCPServer shim gone")
	}
	if srv, err := NewCohortServer(CohortOptions{}); err != nil || srv == nil {
		t.Fatalf("NewCohortServer shim gone: %v", err)
	}
}
