package rhythm

import (
	"fmt"
	"time"

	"rhythm/internal/backend"
	"rhythm/internal/banking"
	"rhythm/internal/netmodel"
	"rhythm/internal/pipeline"
	"rhythm/internal/session"
	"rhythm/internal/sim"
	"rhythm/internal/simt"
)

// Platform selects the emulated system of §5.3.2.
type Platform int

// The three Rhythm platforms.
const (
	// TitanA is a discrete GPU behind PCIe 3.0 with a host backend and
	// responses shipped over the bus.
	TitanA Platform = iota
	// TitanB emulates an SoC-style integrated NIC with the Besim backend
	// running on the device.
	TitanB
	// TitanC is TitanB plus a specialized unit that performs the
	// response transpose off the device's critical path.
	TitanC
)

func (p Platform) String() string {
	switch p {
	case TitanA:
		return "Titan A"
	case TitanB:
		return "Titan B"
	case TitanC:
		return "Titan C"
	}
	return "unknown"
}

// Options configures a Server.
type Options struct {
	// Platform picks the Titan A/B/C emulation. Default TitanB.
	Platform Platform
	// CohortSize is the number of requests batched per cohort (default
	// 4096, the paper's choice).
	CohortSize int
	// MaxCohorts is the number of cohort contexts in flight (default 8).
	MaxCohorts int
	// FormationTimeout bounds how long a request may wait for its cohort
	// to fill (default 0: saturation workloads never need it).
	FormationTimeout time.Duration
	// DisablePadding turns off §4.3.2 whitespace alignment (ablation).
	DisablePadding bool
	// DisableTranspose keeps cohort buffers row-major (ablation).
	DisableTranspose bool
	// ValidateEvery samples one response in every N through the SPECWeb
	// validator (default 1024; 0 disables).
	ValidateEvery int
	// Sessions pre-populates this many live sessions (default 4 ×
	// CohortSize).
	Sessions int
	// Seed drives the deterministic workload generator (default 1).
	Seed int64

	// Straggler handling (§3.1), meaningful on TitanA (remote backend):
	// BackendTailProb of lookups take BackendTailFactor × the base
	// service time; with a StragglerTimeout, cohorts stop waiting at the
	// deadline and stragglers re-execute on the host CPU.
	BackendTailProb   float64
	BackendTailFactor float64
	StragglerTimeout  time.Duration
}

func (o *Options) fill() {
	if o.CohortSize == 0 {
		o.CohortSize = 4096
	}
	if o.MaxCohorts == 0 {
		o.MaxCohorts = 8
	}
	if o.ValidateEvery == 0 {
		o.ValidateEvery = 1024
	}
	if o.Sessions == 0 {
		o.Sessions = 4 * o.CohortSize
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Stats reports one run's outcome.
type Stats struct {
	Completed          uint64
	Errors             uint64
	ParseErrors        uint64
	Images             uint64 // static assets served via the bypass path
	Stragglers         uint64 // backend stragglers re-executed on the host
	Validated          uint64
	ValidationFailures uint64
	// Throughput is requests/sec of virtual time.
	Throughput float64
	// MeanLatency / P99Latency are end-to-end request latencies.
	MeanLatency time.Duration
	P99Latency  time.Duration
	// Elapsed is the virtual time the run took.
	Elapsed time.Duration
	// DeviceUtilization is the slot-weighted busy fraction of the device.
	DeviceUtilization float64
	// CohortsFormed / CohortsTimedOut describe cohort formation.
	CohortsFormed   uint64
	CohortsTimedOut uint64
	// MeanOccupancy is the average cohort fill at launch.
	MeanOccupancy float64
}

// SimServer is a Rhythm banking server on a simulated SIMT device,
// driven offline under virtual time (no listener). It is
// single-goroutine: construct, serve, read stats. For a live TCP server
// use New, which returns the Server interface.
type SimServer struct {
	opts     Options
	eng      *sim.Engine
	dev      *simt.Device
	db       *backend.DB
	sessions *session.Array
	gen      *banking.Generator
	srv      *pipeline.Server
}

// NewServer builds an offline simulation server.
//
// Deprecated: use NewSimServer. NewServer remains so pre-v2 callers
// compile; it is a trivial alias and will not grow new options.
func NewServer(opts Options) *SimServer { return NewSimServer(opts) }

// NewSimServer builds an offline simulation server and its workload
// generator.
func NewSimServer(opts Options) *SimServer {
	opts.fill()
	eng := sim.NewEngine()
	po := pipelineOptions(opts)
	var bus *sim.Pipe
	if opts.Platform == TitanA {
		bus = sim.NewPipe(eng, netmodel.PCIe3Bps, 1000)
	}
	// Size device memory for one cohort of every buffer class per
	// context (mixed traffic binds classes on demand) plus the reader
	// batches.
	memBytes := int(int64(po.MaxCohorts)*banking.AllClassesDeviceBytes(po.CohortSize)) +
		4*po.CohortSize*banking.RequestSlot + 64<<20
	dev := simt.NewDevice(eng, simt.GTXTitan(), memBytes, bus)
	db := backend.New()

	buckets := po.CohortSize
	if buckets < 256 {
		buckets = 256
	}
	perBucket := (opts.Sessions*8)/buckets + 16
	sessions := session.NewArray(buckets, perBucket)
	gen := banking.NewGenerator(opts.Seed, sessions)
	gen.Populate(opts.Sessions)

	return &SimServer{
		opts:     opts,
		eng:      eng,
		dev:      dev,
		db:       db,
		sessions: sessions,
		gen:      gen,
		srv:      pipeline.New(eng, dev, po, db, sessions),
	}
}

func pipelineOptions(o Options) pipeline.Options {
	po := pipeline.Options{
		CohortSize:         o.CohortSize,
		MaxCohorts:         o.MaxCohorts,
		FormationTimeout:   sim.Duration(o.FormationTimeout),
		Padding:            !o.DisablePadding,
		ColumnMajor:        !o.DisableTranspose,
		BackendWorkers:     8,
		BackendServiceTime: 2_000,
		ValidateEvery:      o.ValidateEvery,
		BackendTailProb:    o.BackendTailProb,
		BackendTailFactor:  o.BackendTailFactor,
		StragglerTimeout:   sim.Duration(o.StragglerTimeout),
		Seed:               o.Seed,
	}
	switch o.Platform {
	case TitanA:
		o2 := po
		o2.DeviceBackend = false
		o2.ResponseOverBus = true
		return o2
	case TitanC:
		po.DeviceBackend = true
		po.OffloadResponseTranspose = true
	default:
		po.DeviceBackend = true
	}
	return po
}

// GenerateMixed produces n requests drawn from the Table 2 mix.
func (s *SimServer) GenerateMixed(n int) [][]byte {
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i], _ = s.gen.Mixed()
	}
	return reqs
}

// GenerateIsolated produces n requests of one type by its Table 2 name
// (e.g., "account_summary").
func (s *SimServer) GenerateIsolated(typeName string, n int) ([][]byte, error) {
	rt, err := typeByName(typeName)
	if err != nil {
		return nil, err
	}
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i] = s.gen.Request(rt)
	}
	return reqs, nil
}

// typeByName resolves a Table 2 request-type name.
func typeByName(name string) (banking.ReqType, error) {
	for rt := banking.ReqType(0); rt < banking.NumTypes; rt++ {
		if rt.String() == name {
			return rt, nil
		}
	}
	return 0, fmt.Errorf("rhythm: unknown request type %q (see Table 2 names)", name)
}

// RequestTypes lists the 14 implemented request-type names.
func RequestTypes() []string {
	names := make([]string, banking.NumTypes)
	for rt := banking.ReqType(0); rt < banking.NumTypes; rt++ {
		names[rt] = rt.String()
	}
	return names
}

// Serve runs the given raw requests through the pipeline at saturation
// and returns the run's statistics. Each call continues the same virtual
// timeline and session state.
func (s *SimServer) Serve(reqs [][]byte) Stats {
	st := s.srv.Run(&pipeline.SliceSource{Reqs: reqs})
	return convertStats(st, s.dev)
}

// ServePaced runs requests arriving at a fixed rate (requests/sec),
// exercising cohort formation timeouts and partial cohorts.
func (s *SimServer) ServePaced(reqs [][]byte, arrivalRate float64) Stats {
	if arrivalRate <= 0 {
		panic("rhythm: arrival rate must be positive")
	}
	interval := sim.Time(1e9 / arrivalRate)
	arrivals := make([]pipeline.Arrival, len(reqs))
	base := s.eng.Now()
	for i, r := range reqs {
		arrivals[i] = pipeline.Arrival{Raw: r, At: base + sim.Time(i)*interval}
	}
	st := s.srv.RunPaced(arrivals)
	return convertStats(st, s.dev)
}

func convertStats(st pipeline.Stats, dev *simt.Device) Stats {
	return Stats{
		Completed:          st.Completed,
		Errors:             st.Errors,
		ParseErrors:        st.ParseErrors,
		Images:             st.Images,
		Stragglers:         st.Stragglers,
		Validated:          st.Validated,
		ValidationFailures: st.ValidationFailures,
		Throughput:         st.Throughput(),
		MeanLatency:        time.Duration(st.Latency.Mean()),
		P99Latency:         time.Duration(st.Latency.Percentile(99)),
		Elapsed:            time.Duration(st.End - st.Start),
		DeviceUtilization:  dev.Utilization(),
		CohortsFormed:      st.Cohort.Formed,
		CohortsTimedOut:    st.Cohort.TimedOut,
		MeanOccupancy:      st.Cohort.MeanOccupancy(),
	}
}
