package rhythm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// loginAndBrowse drives one login plus a couple of session'd requests so
// the server has cohorts, launches, and latencies to report.
func loginAndBrowse(t *testing.T, addr net.Addr, uid uint64, pw string) {
	t.Helper()
	conn := dialT(t, addr)
	r := bufio.NewReader(conn)
	body := fmt.Sprintf("userid=%d&passwd=%s", uid, pw)
	fmt.Fprintf(conn, "POST /login.php HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	resp := string(readRawResponse(t, r))
	var cookie string
	for _, line := range strings.Split(resp, "\r\n") {
		if v, ok := strings.CutPrefix(line, "Set-Cookie: "); ok {
			cookie = v
		}
	}
	if cookie == "" {
		t.Fatalf("login returned no cookie: %.200q", resp)
	}
	for _, uri := range []string{"/account_summary.php", "/profile.php"} {
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\nCookie: %s\r\n\r\n", uri, cookie)
		readRawResponse(t, r)
	}
}

// scrape fetches one endpoint over a fresh connection and returns the
// full response.
func scrape(t *testing.T, addr net.Addr, path string) string {
	t.Helper()
	conn := dialT(t, addr)
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
	return string(readRawResponse(t, bufio.NewReader(conn)))
}

// checkPromDocument asserts resp is a 200 whose body is parseable
// Prometheus text format containing every family in want.
func checkPromDocument(t *testing.T, resp string, want []string) {
	t.Helper()
	if !strings.HasPrefix(resp, "HTTP/1.1 200 ") {
		t.Fatalf("/metrics answered %.100q, want 200", resp)
	}
	_, body, ok := strings.Cut(resp, "\r\n\r\n")
	if !ok {
		t.Fatalf("no body in response %.200q", resp)
	}
	for _, fam := range want {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Fatalf("/metrics missing family %s:\n%s", fam, body)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
	}
}

// TestCohortServerMetricsEndpoint: after live traffic, /metrics exposes
// the per-type latency histograms and the device's divergence/coalescing
// counters in parseable Prometheus text format.
func TestCohortServerMetricsEndpoint(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})
	uid, pw := srv.Seed(4242)
	loginAndBrowse(t, srv.Addr(), uid, pw)

	resp := scrape(t, srv.Addr(), MetricsPath)
	checkPromDocument(t, resp, []string{
		"rhythm_build_info",
		"rhythm_requests_served_total",
		"rhythm_requests_total",
		"rhythm_cohorts_total",
		"rhythm_request_latency_seconds",
		"rhythm_formation_wait_seconds",
		"rhythm_cohort_occupancy",
		"rhythm_device_launches_total",
		"rhythm_device_divergent_execs_total",
		"rhythm_device_mem_transactions_total",
		"rhythm_device_ideal_mem_transactions_total",
		"rhythm_device_energy_joules_total",
	})
	for _, want := range []string{
		`rhythm_build_info{mode="cohort"} 1`,
		`rhythm_requests_total{workload="banking",type="login"} 1`,
		`rhythm_request_latency_seconds_count{workload="banking",type="login"} 1`,
		`rhythm_cohorts_total{workload="banking",type="login",result="timeout"} 1`,
	} {
		if !strings.Contains(resp, want+"\n") {
			t.Fatalf("/metrics missing sample %q:\n%s", want, resp)
		}
	}
	// The device actually ran kernels for this traffic.
	if strings.Contains(resp, "rhythm_device_launches_total 0\n") {
		t.Fatalf("device launch counter still zero after traffic:\n%s", resp)
	}
}

// TestCohortServerTraceEndpoint: /rhythm-trace returns a valid Chrome
// trace-event document whose request track carries the full lifecycle
// (classify → admit-queue → formation-wait → stage → render → write) and
// whose device track carries the linked kernel launches.
func TestCohortServerTraceEndpoint(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		FormationTimeout: 2 * time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})
	uid, pw := srv.Seed(777)
	loginAndBrowse(t, srv.Addr(), uid, pw)

	resp := scrape(t, srv.Addr(), TracePath)
	if !strings.HasPrefix(resp, "HTTP/1.1 200 ") {
		t.Fatalf("/rhythm-trace answered %.100q, want 200", resp)
	}
	_, body, _ := strings.Cut(resp, "\r\n\r\n")
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	kernels := 0
	var linked bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Pid == 2 {
			kernels++
			continue
		}
		seen[ev.Name] = true
		if strings.HasPrefix(ev.Name, "stage-") {
			if _, ok := ev.Args["launch_seq"]; ok {
				linked = true
			}
		}
	}
	for _, span := range []string{"classify", "admit-queue", "formation-wait", "stage-0", "render", "write"} {
		if !seen[span] {
			t.Fatalf("trace missing %q span; saw %v", span, seen)
		}
	}
	if kernels == 0 {
		t.Fatal("trace has no device kernel events")
	}
	if !linked {
		t.Fatal("no stage span carries a launch_seq linkage arg")
	}

	// Malformed capture windows answer 400.
	if bad := scrape(t, srv.Addr(), TracePath+"?secs=oops"); !strings.HasPrefix(bad, "HTTP/1.1 400 ") {
		t.Fatalf("bad secs answered %.100q, want 400", bad)
	}

	// A ?secs=1 capture window returns only traffic inside the window.
	done := make(chan string, 1)
	go func() {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			done <- ""
			return
		}
		defer conn.Close()
		fmt.Fprintf(conn, "GET %s?secs=1 HTTP/1.1\r\nHost: t\r\n\r\n", TracePath)
		done <- string(readRawResponse(t, bufio.NewReader(conn)))
	}()
	time.Sleep(200 * time.Millisecond)
	loginAndBrowse(t, srv.Addr(), uid, pw)
	captured := <-done
	if !strings.HasPrefix(captured, "HTTP/1.1 200 ") {
		t.Fatalf("capture window answered %.100q, want 200", captured)
	}
	if !strings.Contains(captured, `"formation-wait"`) {
		t.Fatal("capture window missed the in-window traffic")
	}
}

// TestHostServerMetricsAndTrace: the host-mode TCPServer speaks the same
// /metrics and /rhythm-trace surface (minus the device track).
func TestHostServerMetricsAndTrace(t *testing.T) {
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()
	uid, pw := host.Seed(31337)
	loginAndBrowse(t, host.Addr(), uid, pw)

	resp := scrape(t, host.Addr(), MetricsPath)
	checkPromDocument(t, resp, []string{
		"rhythm_build_info",
		"rhythm_requests_served_total",
		"rhythm_requests_total",
		"rhythm_request_latency_seconds",
	})
	if !strings.Contains(resp, `rhythm_build_info{mode="host"} 1`+"\n") {
		t.Fatalf("host /metrics missing mode label:\n%s", resp)
	}

	tresp := scrape(t, host.Addr(), TracePath)
	_, body, _ := strings.Cut(tresp, "\r\n\r\n")
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("host trace invalid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, span := range []string{"classify", "execute", "render", "write"} {
		if !seen[span] {
			t.Fatalf("host trace missing %q span; saw %v", span, seen)
		}
	}
}

// TestObservabilityConcurrentScrape hammers every read endpoint while
// live traffic flows, in both modes — the -race CI leg turns any
// snapshot race in /rhythm-stats, /metrics, or /rhythm-trace into a
// failure.
func TestObservabilityConcurrentScrape(t *testing.T) {
	srv := startCohortServer(t, CohortOptions{
		FormationTimeout: time.Millisecond,
		RequestDeadline:  30 * time.Second,
	})
	host := NewTCPServer(4096)
	if err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	go host.Serve()

	addrs := []net.Addr{srv.Addr(), host.Addr()}
	uids := make([]uint64, len(addrs))
	pws := make([]string, len(addrs))
	uids[0], pws[0] = srv.Seed(6001)
	uids[1], pws[1] = host.Seed(6001)

	const rounds = 5
	var wg sync.WaitGroup
	for i, addr := range addrs {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(addr net.Addr, uid uint64, pw string) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					loginAndBrowse(t, addr, uid, pw)
				}
			}(addr, uids[i], pws[i])
		}
		for _, path := range []string{StatsPath, MetricsPath, TracePath, FlightPathV1, HealthPathV1} {
			wg.Add(1)
			go func(addr net.Addr, path string) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if resp := scrape(t, addr, path); !strings.HasPrefix(resp, "HTTP/1.1 200 ") {
						t.Errorf("%s answered %.100q under load", path, resp)
						return
					}
				}
			}(addr, path)
		}
	}
	wg.Wait()
}
