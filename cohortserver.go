package rhythm

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rhythm/internal/adapt"
	"rhythm/internal/backend"
	"rhythm/internal/cluster"
	"rhythm/internal/cohort"
	"rhythm/internal/fabric"
	"rhythm/internal/flight"
	"rhythm/internal/httpx"
	"rhythm/internal/obs"
	"rhythm/internal/obs/health"
	"rhythm/internal/rcache"
	"rhythm/internal/service"
	"rhythm/internal/session"
	"rhythm/internal/sim"
	"rhythm/internal/simt"
	"rhythm/internal/stats"
)

// StatsPath is the endpoint both TCP servers expose for live counters.
const StatsPath = "/rhythm-stats"

// CohortOptions tunes the live cohort-batched server.
type CohortOptions struct {
	// Registry is the workload registry the server serves (nil =
	// DefaultRegistry(): banking, ecom, telemetry). Classification,
	// shard-group affinity, device cohort geometry, render-cache
	// eligibility, and the metrics/stats label universe all derive from
	// it (DESIGN.md §16).
	Registry *service.Registry
	// CohortSize is the number of requests batched per cohort (default
	// 128 — live traffic forms far smaller cohorts than the offline
	// saturation harness).
	CohortSize int
	// MaxCohorts is the number of cohort formation contexts in flight
	// across the whole pool (default 4×Devices). Each device gets
	// MaxCohorts/Devices execution slots.
	MaxCohorts int
	// Devices is the width of the SIMT device pool formed cohorts are
	// dispatched onto (default 1). State shards across Devices groups
	// by session affinity; see internal/cluster and DESIGN.md §11.
	Devices int
	// DeviceQueue bounds each device's dispatch queue (0 = cluster
	// default, 2× the device's execution slots). A full queue sheds the
	// cohort with the 503 path.
	DeviceQueue int
	// FaultPlan optionally injects device faults (nil = none); see
	// cluster.FaultPlan.
	FaultPlan *cluster.FaultPlan
	// Nodes splits the device pool into this many in-process fabric
	// nodes of Devices modeled devices each (default 1 — the classic
	// single-cluster topology), routed by rendezvous-hashed session
	// affinity over a global shard-group table (DESIGN.md §17).
	Nodes int
	// WorkerAddrs lists remote `rhythmd -worker` addresses; non-empty
	// selects the tcp fabric transport with one node per address.
	// Workers size their own device pools, so Devices/Nodes only shape
	// the frontend's defaults. Render caching and live launch-profile
	// merging need in-process device state and disable themselves.
	WorkerAddrs []string
	// LinkBps budgets each fabric node's link in bytes/sec (0 =
	// unmetered): the NIC in front of a tcp worker, the modeled PCIe
	// bus in front of a loopback node. A saturated link sheds with 503
	// (internal/netmodel; counters in /v1/topology).
	LinkBps float64
	// NodeFaultPlan kills whole fabric nodes deterministically
	// (failover drills); see fabric.NodeFaultPlan.
	NodeFaultPlan *fabric.NodeFaultPlan
	// WorkloadQuotas caps each named workload's share (0 < share ≤ 1)
	// of admission capacity: a workload holding more than
	// share×(AdmitQueue+OverflowLimit) concurrent in-flight requests
	// sheds with 503, counted per workload in /v1/stats
	// (workload_sheds) and /metrics (rhythm_shed_total).
	WorkloadQuotas map[string]float64
	// FormationTimeout is the wall-clock §3.1 formation deadline
	// measured from a cohort's first request (default 2ms; negative
	// disables timeouts, for tests that exercise drain of partial
	// cohorts).
	FormationTimeout time.Duration
	// RequestDeadline bounds a request's end-to-end residence including
	// formation delay; past it the connection gets a 504 (default 5s).
	// The request may still complete server-side — the deadline releases
	// the connection, not the cohort slot.
	RequestDeadline time.Duration
	// AdmitQueue bounds the admission queue between connection handlers
	// and the device loop (default 4×CohortSize). A full queue sheds
	// with 503 + Retry-After.
	AdmitQueue int
	// OverflowLimit bounds requests parked because every cohort context
	// is Busy (default 2×CohortSize; negative means no parking — reject
	// the moment the pool has no free context).
	OverflowLimit int
	// MaxSessions sizes the session array (default 1<<16). The bucket
	// geometry matches NewTCPServer so host and cohort mode create
	// identical session ids for identical request streams.
	MaxSessions int
	// RetryAfter is the hint on 503 responses (default 1s). With an SLO
	// set, the adaptive controller's backlog estimate overrides it.
	RetryAfter time.Duration
	// SLO enables the adaptive formation controller (internal/adapt,
	// DESIGN.md §12) with this p99 latency target: formation windows and
	// early-launch thresholds are retuned per request type from the
	// observed arrival rate and the measured service model, and below the
	// crossover rate requests fall back to the scalar host path. Zero
	// keeps the fixed FormationTimeout for every type.
	SLO time.Duration
	// AdaptTick is the controller's retuning period (default 100ms).
	AdaptTick time.Duration
	// CrossoverRate tunes the adaptive host/device routing crossover in
	// req/s: 0 derives it from the measured service model, >0 uses the
	// explicit rate, <0 disables host fallback (always batch).
	CrossoverRate float64
	// HostParallelism caps the host workers executing kernel warps
	// (0 = all cores; see DESIGN.md §8).
	HostParallelism int
	// SimParallelism caps the host workers executing independent kernel
	// launches of one device epoch batch concurrently (0 = all cores;
	// see DESIGN.md §13). Simulated results are bit-identical at every
	// setting.
	SimParallelism int
	// ProfileOff disables the device's kernel-launch profiler
	// (simt.Config.ProfileOff). On by default: recording is
	// zero-allocation and costs <2% (BenchmarkProfilerOverhead).
	ProfileOff bool
	// ProfileRing sizes the launch-record ring (0 = simt default, 4096).
	ProfileRing int
	// TraceCapacity bounds the request-trace recorder behind
	// /rhythm-trace (0 = obs default, 1024).
	TraceCapacity int
	// RenderCache, when positive, enables the whole-page render cache
	// with roughly this many entries: repeated read-only requests are
	// answered from memory before admission, bypassing cohort formation
	// and kernel launch entirely, byte-identical to a fresh render.
	// Invalidation hooks the shard groups' Besim write commit (see
	// internal/rcache and DESIGN.md §14). Zero disables caching.
	RenderCache int
	// FlightRing sizes the flight recorder's anomaly ring (0 = default
	// 256); FlightSlow sets an explicit slow-promotion threshold (0 =
	// adaptive p99 estimate). See internal/flight and DESIGN.md §15.
	FlightRing int
	FlightSlow time.Duration
	// HealthObjective is the /v1/health burn-rate objective (0 = 0.99);
	// HealthFastWindow and HealthSlowWindow are the burn evaluation
	// horizons (0 = 5m and 1h). The latency target the counts classify
	// against is SLO when set, else a 250ms default.
	HealthObjective  float64
	HealthFastWindow time.Duration
	HealthSlowWindow time.Duration
}

func (o *CohortOptions) fill() {
	if o.Registry == nil {
		o.Registry = DefaultRegistry()
	}
	if o.CohortSize == 0 {
		o.CohortSize = 128
	}
	if o.Devices <= 0 {
		o.Devices = 1
	}
	if o.MaxCohorts == 0 {
		o.MaxCohorts = 4 * o.Devices
	}
	if o.FormationTimeout == 0 {
		o.FormationTimeout = 2 * time.Millisecond
	}
	if o.RequestDeadline == 0 {
		o.RequestDeadline = 5 * time.Second
	}
	if o.AdmitQueue == 0 {
		o.AdmitQueue = 4 * o.CohortSize
	}
	if o.OverflowLimit == 0 {
		o.OverflowLimit = 2 * o.CohortSize
	} else if o.OverflowLimit < 0 {
		o.OverflowLimit = 0
	}
	if o.MaxSessions < 256 {
		o.MaxSessions = 1 << 16
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
}

// liveReq is one in-flight request: the parsed form handed to the device
// loop plus the channel its rendered response comes back on.
//
// spans is shared between the handler and the device loop without a
// lock; the resp channel is the fence. The handler appends before
// admission, the loop appends between consuming the request and sending
// on resp, and the handler only touches spans again after receiving from
// resp (channel happens-before). On the paths where the handler answers
// without a loop response (504 deadline, loop exit) it must NOT read
// spans — the loop may still be appending — so those responses go
// untraced.
type liveReq struct {
	req      httpx.Request
	t        service.TypeID
	group    int // shard group (cluster.GroupFor; -1 = stateless)
	enq      time.Time
	admitted time.Time // loop pickup (set by admit)
	spans    []obs.Span
	resp     chan []byte // buffered(1): the loop never blocks delivering

	// frec is the request's flight record, shared handler↔loop under the
	// same resp-channel fence as spans: the loop fills the causal fields
	// (cohort size, launch reason, device, launch seqs, status) before
	// sending on resp, and the handler Finishes it only after receiving.
	// The no-response paths (504, loop exit) must NOT touch frec — the
	// loop may still be writing — and use a local Record instead.
	frec flight.Record

	// Render-cache insertion state, captured before admission: the
	// resolved session/user and the user's state version at lookup time.
	// The completion path inserts the rendered page under these.
	cacheable  bool
	csid       session.ID
	cuid, cver uint64
}

// flushMsg asks the loop to launch the forming cohort for a key; gen
// guards against a stale timer firing after that cohort already launched
// and a new one opened under the same key.
type flushMsg struct {
	key string
	gen uint64
}

type formingTimer struct {
	timer *time.Timer
	gen   uint64
}

// perStage accumulates one pipeline stage's launch count and device time
// for a request type.
type perStage struct {
	Launches uint64  `json:"launches"`
	DeviceUs float64 `json:"device_us_total"`
}

type typeCounters struct {
	cohorts, filled, timedOut, early, requests uint64
	hostReqs                                   uint64
	sumOccup                                   uint64
	maxOccup                                   int
	stages                                     []perStage
}

// CohortTypeStats is the per-request-type section of CohortServerStats.
type CohortTypeStats struct {
	Workload      string     `json:"workload"`
	Cohorts       uint64     `json:"cohorts"`
	Filled        uint64     `json:"filled"`
	TimedOut      uint64     `json:"timed_out"`
	Early         uint64     `json:"early"`
	Requests      uint64     `json:"requests"`
	HostRequests  uint64     `json:"host_requests"`
	MeanOccupancy float64    `json:"mean_occupancy"`
	MaxOccupancy  int        `json:"max_occupancy"`
	Stages        []perStage `json:"stages"`
}

// CohortServerStats is the /rhythm-stats document of a cohort-mode
// server (cmd/rhythm-load decodes it to report server-side batching).
type CohortServerStats struct {
	SchemaVersion int    `json:"schema_version"`
	Mode          string `json:"mode"`
	// Workloads lists the registered workload names in registration
	// order; Types keys are workload-qualified display labels (banking's
	// stay bare, the version-3 legacy aliases).
	Workloads       []string `json:"workloads"`
	Served          uint64   `json:"served"`
	KernelErrors    uint64   `json:"kernel_errors"`
	ParseErrors     uint64   `json:"parse_errors"`
	NotFound        uint64   `json:"not_found"`
	Images          uint64   `json:"images"`
	RejectedQueue   uint64   `json:"rejected_queue"`
	RejectedPool    uint64   `json:"rejected_pool"`
	DeadlineMisses  uint64   `json:"deadline_misses"`
	CohortsFormed   uint64   `json:"cohorts_formed"`
	CohortsFilled   uint64   `json:"cohorts_filled"`
	CohortsTimedOut uint64   `json:"cohorts_timed_out"`
	CohortsEarly    uint64   `json:"cohorts_early"`
	HostFallbacks   uint64   `json:"host_fallbacks"`
	RequestsBatched uint64   `json:"requests_batched"`
	AdmissionStalls uint64   `json:"admission_stalls"`
	SumOccupancy    uint64   `json:"sum_occupancy"`
	MeanOccupancy   float64  `json:"mean_occupancy"`
	MaxOccupancy    int      `json:"max_occupancy"`
	MaxContexts     int      `json:"max_contexts_in_use"`
	FormWaitMsMean  float64  `json:"formation_wait_ms_mean"`
	FormWaitMsP99   float64  `json:"formation_wait_ms_p99"`
	LaunchDevUsMean float64  `json:"launch_device_us_mean"`
	LatencyMsP50    float64  `json:"latency_ms_p50"`
	LatencyMsP99    float64  `json:"latency_ms_p99"`

	// Device is the pool's aggregate device counter set; Devices breaks
	// it down per device. Both come from a single atomic pass over the
	// cluster (one mutex hold), so a scrape during drain or failover
	// never observes torn counts across the per-device fields.
	Device simt.DeviceStats `json:"device"`
	// ProfiledLaunches is how many launches the kernel profilers have
	// recorded across the pool (0 when profiling is off).
	ProfiledLaunches uint64 `json:"profiled_launches"`

	// Devices is the per-device breakdown: health, queue depth,
	// outstanding cohorts, owned shard groups, virtual time, stats.
	Devices []cluster.DeviceSnapshot `json:"devices"`
	// Failovers counts shard groups reassigned off a dead device;
	// DeviceRetries counts kernel-launch retry attempts; ShedCohorts
	// counts cohorts refused by the pool (full device queue or no
	// healthy device) and answered with 503s.
	Failovers     uint64 `json:"failovers"`
	DeviceRetries uint64 `json:"device_retries"`
	ShedCohorts   uint64 `json:"shed_cohorts"`

	// Fabric topology (schema v5): transport kind, per-node rows, and
	// node-level failover/link counters. Stripped from the ?schema=4
	// legacy rendering.
	Transport     string                `json:"transport,omitempty"`
	Nodes         []fabric.NodeSnapshot `json:"nodes,omitempty"`
	NodeFailovers uint64                `json:"node_failovers,omitempty"`
	NodeRetries   uint64                `json:"node_retries,omitempty"`
	LinkSheds     uint64                `json:"link_sheds,omitempty"`
	LostUnits     uint64                `json:"lost_units,omitempty"`
	// WorkloadSheds counts 503-shed requests per workload name (schema
	// v5): quota, queue, pool, link, and node-loss sheds all count.
	WorkloadSheds map[string]uint64 `json:"workload_sheds,omitempty"`

	// Render-cache counters (zero when the cache is disabled).
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	CacheEntries       uint64 `json:"cache_entries"`

	// Flight-recorder counters (DESIGN.md §15).
	FlightRequests  uint64 `json:"flight_requests"`
	FlightAnomalies uint64 `json:"flight_anomalies"`

	// Adapt is the adaptive-formation controller's state (nil when the
	// server runs a fixed formation timeout).
	Adapt *adapt.Snapshot `json:"adapt,omitempty"`

	Types map[string]CohortTypeStats `json:"types"`
}

// liveConn wraps an accepted connection with a busy flag so graceful
// shutdown can close idle (reading) connections while letting a handler
// mid-response finish its write.
type liveConn struct {
	net.Conn
	busy atomic.Bool
}

// CohortServer serves every registered workload over TCP through the
// paper's cohort pipeline: connection handlers parse and classify
// requests on the host, a single device-loop goroutine batches them into
// cohort.Pool contexts under the §3.1 formation timeout, and each full
// (or timed-out) cohort runs its stage kernels on the modeled SIMT
// device, one asynchronous stream per context. Responses are extracted
// from device memory after the response transpose and are byte-identical
// to TCPServer's host path (the differential test in cohortserver_test.go
// asserts this for every request type).
//
// Wall clock drives admission and formation; the simulation engine
// remains a purely virtual device timeline, stepped by the loop while
// launches are in flight.
type CohortServer struct {
	opts CohortOptions
	// reg is the workload registry; names its display-label universe
	// indexed by TypeID, labels the precomputed per-type Prometheus
	// label sets (workload + type).
	reg    *service.Registry
	names  []string
	labels []string
	// fab is the device fabric: the node tier the dispatch loop ships
	// formed cohorts into. Loopback (default) keeps every node
	// in-process; WorkerAddrs makes them remote (DESIGN.md §17).
	fab  *fabric.Fabric
	pool *cohort.Pool[*liveReq]
	// ctrl is the adaptive formation controller (nil without an SLO). Its
	// methods are internally locked; the hot handler path touches it only
	// in Arrival and RetryAfter.
	ctrl *adapt.Controller
	// cache, when non-nil, is the whole-page render cache; hits are
	// answered before admission.
	cache *rcache.Cache

	admitCh chan *liveReq
	flushCh chan flushMsg
	doCh    chan func()
	stopCh  chan struct{}
	doneCh  chan struct{}

	stopOnce sync.Once
	closing  atomic.Bool

	mu sync.Mutex // listener only
	ln net.Listener

	connMu sync.Mutex
	conns  map[*liveConn]struct{}
	connWG sync.WaitGroup

	// Handler-side counters (many goroutines).
	served         atomic.Uint64
	parseErrors    atomic.Uint64
	notFound       atomic.Uint64
	images         atomic.Uint64
	rejectedQueue  atomic.Uint64
	deadlineMisses atomic.Uint64

	// Observability surfaces, safe from any goroutine: the request-trace
	// ring behind /rhythm-trace and the atomic histograms behind /metrics.
	tracer    *obs.Recorder
	latHist   []*stats.Histogram // per service.TypeID, nanoseconds
	formHist  *stats.Histogram   // formation wait, nanoseconds
	occupHist *stats.Histogram   // cohort occupancy at launch

	// flight is the always-on tail-latency recorder behind
	// /v1/debug/flight; hEngine the SLO burn-rate engine behind
	// /v1/health; badByType counts per-type requests that never reach
	// latHist (sheds, deadline misses) so the health engine's totals see
	// them; captureBusy serializes blocking ?secs=N trace captures
	// (DESIGN.md §15).
	flight      *flight.Recorder
	hEngine     *health.Engine
	badByType   []atomic.Uint64 // per service.TypeID
	captureBusy atomic.Bool

	// Per-workload admission quotas (WorkloadQuotas): wlLimit is each
	// workload's concurrent-request cap (0 = unlimited), wlInflight the
	// live count, wlSheds every 503 shed attributed to the workload —
	// quota, queue, pool, link, or node loss. All indexed by the
	// registry's workload index.
	wlLimit    []int64
	wlInflight []atomic.Int64
	wlSheds    []atomic.Uint64

	// Loop-owned state (no locking: single goroutine until doneCh).
	draining      bool
	inflight      int
	overflow      []*liveReq
	forming       map[string]*formingTimer
	nextGen       uint64
	rejectedPool  uint64
	shedCohorts   uint64
	kernelErrors  uint64
	hostFallbacks uint64
	perType       map[string]*typeCounters
	maxOccup      int
	formWait      *stats.LatencyRecorder
	launchLat     *stats.LatencyRecorder
	reqLat        *stats.LatencyRecorder
}

// NewCohortServer builds the server, its device fabric, and its
// dispatch loop. Callers then Listen + Serve, and Shutdown to drain.
// Construction fails when a remote worker cannot be dialed, refuses
// the wire handshake, or a WorkloadQuotas key names no registered
// workload.
func NewCohortServer(opts CohortOptions) (*CohortServer, error) {
	opts.fill()
	reg := opts.Registry
	cfg := simt.GTXTitan()
	cfg.HostParallelism = opts.HostParallelism
	cfg.SimParallelism = opts.SimParallelism
	cfg.ProfileOff = opts.ProfileOff
	cfg.ProfileRing = opts.ProfileRing
	fab, err := fabric.New(fabric.Config{
		Registry:              reg,
		Nodes:                 opts.Nodes,
		Addrs:                 opts.WorkerAddrs,
		DevicesPerNode:        opts.Devices,
		CohortSize:            opts.CohortSize,
		SlotsPerDevice:        (opts.MaxCohorts + opts.Devices - 1) / opts.Devices,
		QueueDepth:            opts.DeviceQueue,
		SessionBuckets:        256,
		SessionNodesPerBucket: opts.MaxSessions/256*4 + 4,
		Simt:                  cfg,
		Faults:                opts.FaultPlan,
		NodeFaults:            opts.NodeFaultPlan,
		LinkBps:               opts.LinkBps,
	})
	if err != nil {
		return nil, err
	}
	s := &CohortServer{
		opts:      opts,
		reg:       reg,
		names:     reg.DisplayNames(),
		labels:    typeLabelSets(reg),
		fab:       fab,
		admitCh:   make(chan *liveReq, opts.AdmitQueue),
		flushCh:   make(chan flushMsg, 256),
		doCh:      make(chan func(), 16),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		conns:     make(map[*liveConn]struct{}),
		forming:   make(map[string]*formingTimer),
		perType:   make(map[string]*typeCounters),
		formWait:  stats.NewLatencyRecorder(),
		launchLat: stats.NewLatencyRecorder(),
		reqLat:    stats.NewLatencyRecorder(),
		tracer:    obs.NewRecorder(opts.TraceCapacity),
		latHist:   newLatencyHistograms(reg.NumTypes()),
		formHist:  stats.NewHistogram(stats.LatencyBucketsNs()),
		occupHist: stats.NewHistogram(stats.PowersOfTwoBuckets(opts.CohortSize)),
		flight:    flight.New(flight.Config{Ring: opts.FlightRing, Slow: opts.FlightSlow}),
		badByType: make([]atomic.Uint64, reg.NumTypes()),
	}
	ws := reg.Workloads()
	s.wlLimit = make([]int64, len(ws))
	s.wlInflight = make([]atomic.Int64, len(ws))
	s.wlSheds = make([]atomic.Uint64, len(ws))
	for name, share := range opts.WorkloadQuotas {
		idx := -1
		for i, w := range ws {
			if w.Name() == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			fab.Close()
			return nil, fmt.Errorf("rhythm: WorkloadQuotas names unregistered workload %q", name)
		}
		// The quota is a share of total admission capacity: the admit
		// queue plus the overflow park. At least one slot so a tiny
		// share can still make progress.
		limit := int64(share * float64(opts.AdmitQueue+opts.OverflowLimit))
		if limit < 1 {
			limit = 1
		}
		s.wlLimit[idx] = limit
	}
	healthSLO := opts.SLO
	if healthSLO <= 0 {
		healthSLO = defaultHealthSLO
	}
	names := s.names
	sloNs := float64(healthSLO)
	s.hEngine = health.New(health.Config{
		Objective:  opts.HealthObjective,
		SLO:        healthSLO,
		FastWindow: opts.HealthFastWindow,
		SlowWindow: opts.HealthSlowWindow,
	}, func() map[string]health.Counts {
		return sloCounts(names, s.latHist, sloNs, s.badByType)
	})
	if opts.RenderCache > 0 {
		s.cache = rcache.New(opts.RenderCache)
		// The hook observes every committed Besim write fabric-wide:
		// device kernels replay their deferred writes into the owning
		// group's DB through the same mutators the host path calls. With
		// remote workers the writes commit in another process — no
		// invalidation signal reaches the frontend, so the cache must
		// stay off (SetWriteHook reports false).
		if !fab.SetWriteHook(s.cache.Invalidate) {
			s.cache = nil
		}
	}
	// Pool timeout 0: formation deadlines run on wall-clock timers (the
	// pool's engine argument is unused at timeout 0 — the cluster's
	// devices own the virtual timelines now).
	s.pool = cohort.NewPool[*liveReq](sim.NewEngine(), opts.MaxCohorts, opts.CohortSize, 0, s.onReady)
	if opts.SLO > 0 {
		s.ctrl = adapt.New(adapt.Config{
			Types:         reg.NumTypes(),
			Names:         s.names,
			Capacity:      opts.CohortSize,
			SLO:           opts.SLO,
			Tick:          opts.AdaptTick,
			CrossoverRate: opts.CrossoverRate,
		})
		// Early launch: the advisor fires on the loop goroutine after
		// every Add, launching a forming cohort once it reaches the
		// controller's per-type threshold.
		s.pool.SetAdvisor(func(c *cohort.Context[*liveReq]) bool {
			return c.Len() >= s.ctrl.Threshold(int(c.Requests()[0].t))
		})
	}
	go s.loop()
	return s, nil
}

// retryAfter is the Retry-After hint for 503 responses: the controller's
// backlog-drain estimate in adaptive mode, else the static option. Safe
// from any goroutine.
func (s *CohortServer) retryAfter() time.Duration {
	if s.ctrl != nil {
		return s.ctrl.RetryAfter()
	}
	return s.opts.RetryAfter
}

// Seed reports the deterministic credentials for userID. Every shard
// group's Besim synthesizes the same profile for a userID on first
// touch, so no state needs creating up front.
func (s *CohortServer) Seed(userID uint64) (uint64, string) {
	return userID, backend.PasswordFor(userID)
}

// Addr reports the bound address once Listen has been called.
func (s *CohortServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Served reports how many responses have been produced (including error
// and shed responses).
func (s *CohortServer) Served() uint64 { return s.served.Load() }

// Listen binds the listener without serving.
func (s *CohortServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Serve accepts connections until the listener closes (Shutdown).
func (s *CohortServer) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("rhythm: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *CohortServer) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains gracefully: stop accepting, reject new admissions,
// flush partially-full cohorts, wait for in-flight launches to write
// their responses back, then close connections (idle ones immediately,
// busy ones after their current write). ctx bounds the wait.
func (s *CohortServer) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.stopOnce.Do(func() { close(s.stopCh) })
	select {
	case <-s.doneCh:
	case <-ctx.Done():
		return ctx.Err()
	}
	// The loop exits only at inflight 0, so the fabric is idle; Close
	// returns once loopback node workers have drained and exited (on
	// tcp it closes the worker connections).
	s.fab.Close()
	// Every admitted request now has its response delivered; handlers
	// parked in a read will never produce another admission (the closing
	// flag sheds), so closing them is safe. Handlers mid-write finish
	// first — the busy flag protects them.
	//
	// Barrier: a handler that saw closing==false completes its WaitGroup
	// registration (under connMu) before we start waiting.
	//lint:ignore SA2001 the empty critical section is the barrier
	s.connMu.Lock()
	s.connMu.Unlock()
	waited := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(waited)
	}()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.connMu.Lock()
		for lc := range s.conns {
			if !lc.busy.Load() {
				lc.Close()
			}
		}
		s.connMu.Unlock()
		select {
		case <-waited:
			return nil
		case <-ctx.Done():
			s.connMu.Lock()
			for lc := range s.conns {
				lc.Close()
			}
			s.connMu.Unlock()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// handle serves one keep-alive connection.
func (s *CohortServer) handle(conn net.Conn) {
	lc := &liveConn{Conn: conn}
	s.connMu.Lock()
	if s.closing.Load() {
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.conns[lc] = struct{}{}
	s.connWG.Add(1)
	s.connMu.Unlock()
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, lc)
		s.connMu.Unlock()
		s.connWG.Done()
	}()
	r := bufio.NewReader(conn)
	a := newParseArena()
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		raw, err := readRequestInto(r, a.raw[:0])
		a.raw = raw
		if err != nil {
			return
		}
		lc.busy.Store(true)
		resp, lr, id := s.respond(a, raw)
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		wstart := time.Now()
		wout := resp
		if id != 0 {
			a.wbuf = spliceTraceHeader(a.wbuf, resp, id)
			wout = a.wbuf
		}
		_, werr := conn.Write(wout)
		lc.busy.Store(false)
		if lr != nil {
			// Response came through lr.resp, so the loop is done with the
			// span slice and flight record (channel happens-before); finish
			// and commit both.
			lr.spans = append(lr.spans, obs.Span{Name: "write", Start: wstart, Dur: time.Since(wstart)})
			s.tracer.Add(obs.RequestTrace{Type: s.names[lr.t], Spans: lr.spans})
			lr.frec.Spans = lr.spans
			lr.frec.Latency = time.Since(lr.frec.Start)
			s.flight.Finish(&lr.frec)
		}
		if werr != nil || s.closing.Load() {
			return
		}
	}
}

// respond parses and classifies one request on the host, then either
// answers it directly (stats, metrics, traces, images, errors) or admits
// it to the device loop and waits for the cohort path's response. The
// returned liveReq is non-nil only when the response was delivered over
// lr.resp — the caller may then read lr.spans and lr.frec to finish the
// trace and flight record. The returned trace ID is non-zero for every
// classified request (the caller splices it into the response headers);
// on the nil-liveReq classified paths the flight record has already been
// finished here with a local Record.
func (s *CohortServer) respond(a *connArena, raw []byte) ([]byte, *liveReq, uint64) {
	s.served.Add(1)
	start := time.Now()
	req := &a.req
	if err := httpx.ParseInto(raw, req); err != nil {
		s.parseErrors.Add(1)
		return errorResponse(400, "Bad Request"), nil, 0
	}
	switch req.Path {
	case StatsPath, StatsPathV1:
		return s.statsResponse(req), nil, 0
	case MetricsPath, MetricsPathV1:
		return s.metricsResponse(), nil, 0
	case TracePath, TracePathV1:
		return s.traceResponse(req), nil, 0
	case FlightPathV1:
		return flightResponse(req, s.flight), nil, 0
	case HealthPathV1:
		return healthResponse(s.hEngine, s.flight), nil, 0
	case TopologyPathV1:
		return s.topologyResponse(), nil, 0
	}
	t, ok := s.reg.Classify(req)
	if !ok {
		if resp, ok := s.reg.Static(req.Path); ok {
			s.images.Add(1)
			return resp, nil, 0
		}
		s.notFound.Add(1)
		return errorResponse(404, "Not Found"), nil, 0
	}
	id := s.flight.NextID()
	widx := s.reg.WorkloadIndex(t)
	if s.closing.Load() {
		s.rejectedQueue.Add(1)
		s.wlSheds[widx].Add(1)
		s.badByType[t].Add(1)
		s.finishLocal(id, t, start, flight.StatusShed)
		return busyResponse(s.retryAfter()), nil, id
	}
	group := s.fab.GroupFor(req, t)

	// Render-cache lookup, before admission: a hit bypasses cohort
	// formation and kernel launch entirely. The state version is
	// captured BEFORE execution so a concurrent write can only make the
	// later insert unreachable, never stale (DESIGN.md §14). Session
	// lookup here is race-safe: the group's array is bucket-locked.
	var (
		cacheable  bool
		csid       session.ID
		cuid, cver uint64
	)
	if s.cache != nil && group >= 0 && s.reg.Spec(t).Cacheable {
		if sid, ok := session.ParseID(req.Cookie(s.reg.WorkloadOf(t).SessionCookie())); ok {
			// GroupSessions is nil while the group's owning node is down
			// (and always on remote transports, where the cache is off).
			if arr := s.fab.GroupSessions(group); arr != nil {
				if uid, ok := arr.Lookup(sid); ok {
					cacheable, csid, cuid = true, sid, uid
					cver = s.cache.Version(cuid)
					if resp, hit := s.cache.Get(t, csid, cuid, cver, req); hit {
						s.latHist[t].ObserveEx(float64(time.Since(start)), id)
						s.finishLocal(id, t, start, flight.StatusOK)
						return resp, nil, id
					}
				}
			}
		}
	}

	// Per-workload admission quota: the slot is held until this handler
	// returns (every exit path below runs the deferred release), so the
	// count is exactly the workload's concurrent in-flight requests.
	if lim := s.wlLimit[widx]; lim > 0 {
		if s.wlInflight[widx].Add(1) > lim {
			s.wlInflight[widx].Add(-1)
			s.rejectedQueue.Add(1)
			s.wlSheds[widx].Add(1)
			s.badByType[t].Add(1)
			s.finishLocal(id, t, start, flight.StatusShed)
			return busyResponse(s.retryAfter()), nil, id
		}
		defer s.wlInflight[widx].Add(-1)
	}

	lr := &liveReq{t: t, group: group, enq: time.Now(), resp: make(chan []byte, 1),
		cacheable: cacheable, csid: csid, cuid: cuid, cver: cver}
	// The in-flight request owns its param/cookie slices: the arena's
	// request is recycled as soon as this handler reads again.
	req.CopyTo(&lr.req)
	lr.frec.Reset()
	lr.frec.TraceID = id
	lr.frec.Type = s.names[t]
	lr.frec.Start = start
	lr.spans = append(lr.spans, obs.Span{Name: "classify", Start: start, Dur: lr.enq.Sub(start)})
	select {
	case s.admitCh <- lr:
	default:
		s.rejectedQueue.Add(1)
		s.wlSheds[widx].Add(1)
		s.badByType[t].Add(1)
		s.finishLocal(id, t, start, flight.StatusShed)
		return busyResponse(s.retryAfter()), nil, id
	}
	deadline := time.NewTimer(s.opts.RequestDeadline)
	defer deadline.Stop()
	select {
	case resp := <-lr.resp:
		return resp, lr, id
	case <-deadline.C:
		s.deadlineMisses.Add(1)
		s.badByType[t].Add(1)
		s.finishLocal(id, t, start, flight.StatusDeadline)
		return errorResponse(504, "Gateway Timeout"), nil, id
	case <-s.doneCh:
		// The loop exited while we waited. Either our response raced the
		// exit (delivered, then doneCh closed — the buffered channel
		// still holds it) or the request was never consumed.
		select {
		case resp := <-lr.resp:
			return resp, lr, id
		default:
			s.rejectedQueue.Add(1)
			s.wlSheds[widx].Add(1)
			s.badByType[t].Add(1)
			s.finishLocal(id, t, start, flight.StatusShed)
			return busyResponse(s.retryAfter()), nil, id
		}
	}
}

// finishLocal finishes a flight record for a classified request answered
// without a loop response (cache hit, shed, deadline miss). The
// liveReq's embedded record may still be owned by the loop on those
// paths, so a stack-local Record carries the outcome instead.
func (s *CohortServer) finishLocal(id uint64, t service.TypeID, start time.Time, status flight.Status) {
	var rec flight.Record
	rec.Reset()
	rec.TraceID = id
	rec.Type = s.names[t]
	rec.Start = start
	rec.Latency = time.Since(start)
	rec.Status = status
	s.flight.Finish(&rec)
}

// loop is the dispatch loop: the only goroutine that touches the pool,
// formation timers, and the loop-owned counters. Execution itself
// happens on the cluster's device workers; their completions come back
// here through doCh, so all accounting stays single-goroutine.
func (s *CohortServer) loop() {
	defer close(s.doneCh)
	stop := s.stopCh
	// The controller retunes on a wall-clock tick; without a controller
	// the nil channel never fires.
	var tickCh <-chan time.Time
	if s.ctrl != nil {
		ticker := time.NewTicker(s.ctrl.TickEvery())
		defer ticker.Stop()
		tickCh = ticker.C
	}
	for {
		if s.draining && s.idle() {
			return
		}
		select {
		case lr := <-s.admitCh:
			s.admit(lr)
		case m := <-s.flushCh:
			s.flush(m)
		case fn := <-s.doCh:
			fn()
		case now := <-tickCh:
			s.ctrl.NoteQueue(len(s.admitCh) + len(s.overflow))
			s.ctrl.Tick(now)
		case <-stop:
			stop = nil
			s.beginDrain()
		}
	}
}

// idle reports whether the drained loop may exit: nothing queued,
// forming, or in flight on the device pool.
func (s *CohortServer) idle() bool {
	return len(s.admitCh) == 0 && len(s.flushCh) == 0 && len(s.doCh) == 0 &&
		len(s.overflow) == 0 && len(s.forming) == 0 && s.inflight == 0 &&
		s.pool.FreeContexts() == s.opts.MaxCohorts
}

// beginDrain stops formation timers and launches everything forming.
// Admissions still queued are served (admit flushes immediately while
// draining), so every accepted request gets a real response.
func (s *CohortServer) beginDrain() {
	s.draining = true
	for _, f := range s.forming {
		f.timer.Stop()
	}
	s.forming = make(map[string]*formingTimer)
	s.pool.Flush("")
}

// admit routes one request into the pool, parking it in the bounded
// overflow when every context is Busy and shedding with 503 past that.
func (s *CohortServer) admit(lr *liveReq) {
	lr.admitted = time.Now()
	lr.spans = append(lr.spans, obs.Span{Name: "admit-queue", Start: lr.enq, Dur: lr.admitted.Sub(lr.enq)})
	if s.ctrl != nil && s.ctrl.Arrival(int(lr.t)) {
		s.dispatchHost(lr)
		return
	}
	if s.place(lr) {
		return
	}
	if len(s.overflow) >= s.opts.OverflowLimit {
		s.rejectedPool++
		s.shedReq(lr)
		return
	}
	s.overflow = append(s.overflow, lr)
}

// shedReq answers one admitted request with the 503 backpressure
// response, attributing the shed to its workload's counter.
func (s *CohortServer) shedReq(lr *liveReq) {
	s.wlSheds[s.reg.WorkloadIndex(lr.t)].Add(1)
	s.badByType[lr.t].Add(1)
	lr.frec.Status = flight.StatusShed
	lr.resp <- busyResponse(s.retryAfter())
}

// dispatchHost routes one request below the crossover rate straight to
// the scalar host path as a single-request Host unit: no cohort context,
// no formation delay. The fabric still executes it on the node and
// device that own the request's shard group, so responses stay
// byte-identical and the group state single-writer.
func (s *CohortServer) dispatchHost(lr *liveReq) {
	unit := &cluster.Unit{Type: lr.t, Group: lr.group, Host: true, Reqs: []httpx.Request{lr.req}}
	s.inflight++
	unit.Done = func(res *cluster.Result) {
		s.doCh <- func() { s.completeHost(lr, res) }
	}
	if !s.fab.Dispatch(unit) {
		s.inflight--
		s.rejectedPool++
		s.shedReq(lr)
	}
}

// completeHost consumes one host-fallback result on the loop goroutine.
func (s *CohortServer) completeHost(lr *liveReq, res *cluster.Result) {
	s.inflight--
	if res.Err != nil {
		s.rejectedPool++
		s.shedReq(lr)
		return
	}
	s.hostFallbacks++
	s.typeStats(lr.t).hostReqs++
	s.kernelErrors += uint64(res.KernelErrs)
	if s.cache != nil && lr.cacheable && res.KernelErrs == 0 {
		s.cache.Put(lr.t, lr.csid, lr.cuid, lr.cver, &lr.req, res.Resps[0])
	}
	lr.spans = append(lr.spans, obs.Span{Name: "host-execute", Start: res.RenderStart, Dur: res.RenderDur})
	lr.frec.HostExec = true
	lr.frec.LaunchReason = "host"
	lr.frec.Device = res.Device
	// A hop is a failover to another device; fold it into the record's
	// attempt trail so tail debugging sees the move (flight.Record).
	lr.frec.Attempts = res.Attempts + res.Hops
	lr.frec.CohortSize = 1
	if res.KernelErrs > 0 {
		lr.frec.Status = flight.StatusKernelErr
		s.badByType[lr.t].Add(1)
	}
	id := lr.frec.TraceID // read before the send hands frec to the handler
	lr.resp <- res.Resps[0]
	lat := float64(time.Since(lr.enq))
	s.record(s.reqLat, lat)
	s.latHist[lr.t].ObserveEx(lat, id)
}

// place tries pool admission; on success it manages the wall-clock
// formation timer for the (possibly newly opened) forming cohort.
// Cohorts are keyed by (type, shard group): a cohort executes against
// one group's state on one device, so requests of the same type but
// different groups form separately.
func (s *CohortServer) place(lr *liveReq) bool {
	key := fmt.Sprintf("%s/%d", s.names[lr.t], lr.group)
	if !s.pool.Add(key, lr) {
		return false
	}
	if s.draining {
		// No timers during drain: launch whatever the Add left forming.
		s.pool.Flush(key)
		return true
	}
	// The formation deadline: the controller's per-type window in
	// adaptive mode, the fixed option otherwise.
	window := s.opts.FormationTimeout
	if s.ctrl != nil {
		window = s.ctrl.Window(int(lr.t))
	}
	if window > 0 && s.pool.Forming(key) && s.forming[key] == nil {
		s.nextGen++
		gen := s.nextGen
		t := time.AfterFunc(window, func() {
			select {
			case s.flushCh <- flushMsg{key: key, gen: gen}:
			case <-s.doneCh:
			}
		})
		s.forming[key] = &formingTimer{timer: t, gen: gen}
	}
	return true
}

// flush handles a formation-timeout message, ignoring stale generations
// (the cohort the timer was armed for already launched).
func (s *CohortServer) flush(m flushMsg) {
	f := s.forming[m.key]
	if f == nil || f.gen != m.gen {
		return
	}
	delete(s.forming, m.key)
	s.pool.Flush(m.key)
}

// drainOverflow retries parked requests after a context frees,
// preserving order per type while letting other types pass a starved
// head (same policy as the offline pipeline's dispatch).
func (s *CohortServer) drainOverflow() {
	if len(s.overflow) == 0 {
		return
	}
	pending := s.overflow
	s.overflow = s.overflow[:0]
	for _, lr := range pending {
		if !s.place(lr) {
			s.overflow = append(s.overflow, lr)
		}
	}
}

// onReady fires (synchronously from pool.Add or Flush) when a cohort
// fills or times out: account formation stats and launch the kernels.
func (s *CohortServer) onReady(c *cohort.Context[*liveReq], why cohort.Reason) {
	if f := s.forming[c.Key]; f != nil {
		f.timer.Stop()
		delete(s.forming, c.Key)
	}
	c.MarkBusy()
	s.inflight++
	s.launch(c, why)
}

// typeStats returns (creating on demand) the counters for a request
// type, with one stage slot per stage kernel.
func (s *CohortServer) typeStats(t service.TypeID) *typeCounters {
	key := s.names[t]
	tc := s.perType[key]
	if tc == nil {
		tc = &typeCounters{stages: make([]perStage, s.reg.Spec(t).Backends+1)}
		s.perType[key] = tc
	}
	return tc
}

// launch hands one formed cohort to the device fabric as a
// cluster.Unit. Routing (node ownership by rendezvous hash, then the
// owning node's device-level session affinity and failover) is the
// fabric's job; completion comes back to the loop goroutine via doCh
// and lands in complete. A refusal — every node down, the owner's link
// budget exhausted, or its queues full — sheds every request with the
// 503 path.
func (s *CohortServer) launch(c *cohort.Context[*liveReq], why cohort.Reason) {
	reqs := c.Requests()
	t := reqs[0].t
	count := len(reqs)
	now := time.Now()
	reason := "timeout"
	switch why {
	case cohort.Filled:
		reason = "filled"
	case cohort.Early:
		reason = "early"
	}
	for _, lr := range reqs {
		wait := float64(now.Sub(lr.enq))
		s.record(s.formWait, wait)
		s.formHist.Observe(wait)
		lr.spans = append(lr.spans, obs.Span{Name: "formation-wait", Start: lr.admitted, Dur: now.Sub(lr.admitted)})
		lr.frec.FormationWait = now.Sub(lr.admitted)
		lr.frec.CohortSize = count
		lr.frec.LaunchReason = reason
	}
	s.occupHist.Observe(float64(count))
	tc := s.typeStats(t)
	tc.cohorts++
	tc.requests += uint64(count)
	tc.sumOccup += uint64(count)
	if count > tc.maxOccup {
		tc.maxOccup = count
	}
	if count > s.maxOccup {
		s.maxOccup = count
	}
	switch why {
	case cohort.Filled:
		tc.filled++
	case cohort.Early:
		tc.early++
	default:
		tc.timedOut++
	}
	unit := &cluster.Unit{Type: t, Group: reqs[0].group, Reqs: make([]httpx.Request, count)}
	for i, lr := range reqs {
		unit.Reqs[i] = lr.req
	}
	unit.Done = func(res *cluster.Result) {
		// Runs on a device worker. The loop cannot have exited: it only
		// returns at inflight 0, and this cohort still counts. The send
		// therefore always completes.
		s.doCh <- func() { s.complete(c, res) }
	}
	if !s.fab.Dispatch(unit) {
		s.shed(c, reqs)
	}
}

// shed answers every request of a refused cohort with the 503
// backpressure response and releases its context.
func (s *CohortServer) shed(c *cohort.Context[*liveReq], reqs []*liveReq) {
	s.shedCohorts++
	for _, lr := range reqs {
		s.shedReq(lr)
	}
	s.finish(c)
}

// finish releases a cohort context and retries parked admissions.
func (s *CohortServer) finish(c *cohort.Context[*liveReq]) {
	s.pool.Release(c)
	s.inflight--
	s.drainOverflow()
}

// complete consumes one cohort's execution result on the loop
// goroutine: per-stage accounting and spans, response delivery, and
// context release. A unit the fabric could not complete (Result.Err —
// every device dead, no routable node, or a connection lost with the
// unit's fate unknown) sheds like a dispatch refusal.
func (s *CohortServer) complete(c *cohort.Context[*liveReq], res *cluster.Result) {
	reqs := c.Requests()
	if res.Err != nil {
		s.shed(c, reqs)
		return
	}
	tc := s.typeStats(reqs[0].t)
	for k, se := range res.Stages {
		tc.stages[k].Launches++
		tc.stages[k].DeviceUs += float64(se.Stats.Duration) / 1e3
		// One span per request, sharing the launch-record linkage args
		// (the map is read-only once built).
		span := obs.Span{
			Name:  fmt.Sprintf("stage-%d", k),
			Start: se.Start,
			Dur:   se.Dur,
			Args:  stageArgs(se.Stats),
		}
		for _, lr := range reqs {
			lr.spans = append(lr.spans, span)
			lr.frec.AddLaunch(se.Stats.Seq)
		}
	}
	s.kernelErrors += uint64(res.KernelErrs)
	now := time.Now()
	for i, lr := range reqs {
		// Conservative insertion gate: a cohort with any kernel error is
		// not cached (per-request errors are only aggregated).
		if s.cache != nil && lr.cacheable && res.KernelErrs == 0 {
			s.cache.Put(lr.t, lr.csid, lr.cuid, lr.cver, &lr.req, res.Resps[i])
		}
		lr.spans = append(lr.spans, obs.Span{Name: "render", Start: res.RenderStart, Dur: res.RenderDur})
		lr.frec.Device = res.Device
		lr.frec.Attempts = res.Attempts + res.Hops
		if res.KernelErrs > 0 {
			// Kernel errors are aggregated per cohort, not attributed per
			// request, so every rider is flagged (conservative).
			lr.frec.Status = flight.StatusKernelErr
			s.badByType[lr.t].Add(1)
		}
		id := lr.frec.TraceID // read before the send hands frec to the handler
		lr.resp <- res.Resps[i]
		lat := float64(now.Sub(lr.enq))
		s.record(s.reqLat, lat)
		s.latHist[lr.t].ObserveEx(lat, id)
	}
	s.record(s.launchLat, float64(res.DeviceTime))
	if s.ctrl != nil {
		// Feed the service model with the wall-clock execution cost of
		// this cohort — stage kernels plus response render — which is
		// what bounds the live server's capacity.
		var svc time.Duration
		for _, se := range res.Stages {
			svc += se.Dur
		}
		svc += res.RenderDur
		s.ctrl.ObserveLaunch(int(reqs[0].t), len(reqs), svc)
	}
	s.finish(c)
}

// maxLatencySamples bounds the stats recorders so a long-lived server
// doesn't grow without bound; past the cap the percentiles freeze on the
// first N samples (counters keep counting).
const maxLatencySamples = 1 << 20

func (s *CohortServer) record(r *stats.LatencyRecorder, v float64) {
	if r.Count() < maxLatencySamples {
		if v < 0 {
			v = 0
		}
		r.Record(v)
	}
}

// Stats snapshots the live counters. Safe to call at any time; while
// the loop runs the snapshot is taken on the loop goroutine.
func (s *CohortServer) Stats() CohortServerStats {
	reply := make(chan CohortServerStats, 1)
	select {
	case s.doCh <- func() { reply <- s.snapshot() }:
		select {
		case st := <-reply:
			return st
		case <-s.doneCh:
			return s.snapshot() // loop exited without running the closure
		}
	case <-s.doneCh:
		return s.snapshot() // loop gone: its state is quiescent, safe to read
	}
}

func (s *CohortServer) snapshot() CohortServerStats {
	ps := s.pool.Stats()
	// One pass over the fabric: per-node counters under the fabric
	// lock, then each node's cluster snapshot (an RPC for remote
	// workers, stale-cached when one is unreachable). The flattened
	// device view keeps the single-cluster stats sections meaningful
	// at any node count.
	cs := s.fab.Snapshot()
	st := CohortServerStats{
		SchemaVersion:    StatsSchemaVersion,
		Mode:             "cohort",
		Workloads:        workloadNames(s.reg),
		Served:           s.served.Load(),
		KernelErrors:     s.kernelErrors,
		ParseErrors:      s.parseErrors.Load(),
		NotFound:         s.notFound.Load(),
		Images:           s.images.Load(),
		RejectedQueue:    s.rejectedQueue.Load(),
		RejectedPool:     s.rejectedPool,
		DeadlineMisses:   s.deadlineMisses.Load(),
		CohortsFormed:    ps.Formed,
		CohortsFilled:    ps.Filled,
		CohortsTimedOut:  ps.TimedOut,
		CohortsEarly:     ps.Early,
		HostFallbacks:    s.hostFallbacks,
		RequestsBatched:  ps.Requests,
		AdmissionStalls:  ps.Stalls,
		SumOccupancy:     ps.SumOccup,
		MeanOccupancy:    ps.MeanOccupancy(),
		MaxOccupancy:     s.maxOccup,
		MaxContexts:      ps.MaxInUse,
		FormWaitMsMean:   s.formWait.Mean() / 1e6,
		FormWaitMsP99:    s.formWait.Percentile(99) / 1e6,
		LaunchDevUsMean:  s.launchLat.Mean() / 1e3,
		LatencyMsP50:     s.reqLat.Percentile(50) / 1e6,
		LatencyMsP99:     s.reqLat.Percentile(99) / 1e6,
		Device:           cs.Aggregate,
		ProfiledLaunches: cs.ProfiledLaunches,
		Devices:          cs.Devices,
		Failovers:        cs.Failovers,
		DeviceRetries:    cs.Retries,
		ShedCohorts:      s.shedCohorts,
		Transport:        cs.Transport,
		Nodes:            cs.Nodes,
		NodeFailovers:    cs.NodeFailovers,
		NodeRetries:      cs.NodeRetries,
		LinkSheds:        cs.LinkSheds,
		LostUnits:        cs.LostUnits,
		FlightRequests:   s.flight.Total(),
		FlightAnomalies:  s.flight.Promoted(),
		Types:            make(map[string]CohortTypeStats, len(s.perType)),
	}
	st.WorkloadSheds = make(map[string]uint64, len(s.wlSheds))
	for i, w := range s.reg.Workloads() {
		st.WorkloadSheds[w.Name()] = s.wlSheds[i].Load()
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheInvalidations = cs.Invalidations
		st.CacheEntries = cs.Entries
	}
	if s.ctrl != nil {
		snap := s.ctrl.Snapshot()
		st.Adapt = &snap
	}
	for key, tc := range s.perType {
		ts := CohortTypeStats{
			Workload:     s.workloadOfDisplay(key),
			Cohorts:      tc.cohorts,
			Filled:       tc.filled,
			TimedOut:     tc.timedOut,
			Early:        tc.early,
			Requests:     tc.requests,
			HostRequests: tc.hostReqs,
			MaxOccupancy: tc.maxOccup,
			Stages:       append([]perStage(nil), tc.stages...),
		}
		if tc.cohorts > 0 {
			ts.MeanOccupancy = float64(tc.sumOccup) / float64(tc.cohorts)
		}
		st.Types[key] = ts
	}
	return st
}

// statsResponse renders /v1/stats. `?schema=4` renders the legacy
// schema-v4 document for pre-fabric readers: the v5 topology fields
// (transport, nodes, node/link counters, workload_sheds) are stripped
// and the version stamp says 4. Everything v4 defined is identical.
func (s *CohortServer) statsResponse(req *httpx.Request) []byte {
	st := s.Stats()
	if req.Param("schema") == "4" {
		st.SchemaVersion = 4
		st.Transport = ""
		st.Nodes = nil
		st.NodeFailovers, st.NodeRetries = 0, 0
		st.LinkSheds, st.LostUnits = 0, 0
		st.WorkloadSheds = nil
	}
	return jsonResponse(st)
}

// topologyResponse renders /v1/topology: the fabric's node-level view —
// transport kind, per-node health, routed groups, dispatch/completion
// counters, link budgets and saturation sheds, and each node's own
// cluster snapshot.
func (s *CohortServer) topologyResponse() []byte {
	return jsonResponse(s.fab.Snapshot())
}

// workloadOfDisplay resolves a per-type stats key back to its owning
// workload's name.
func (s *CohortServer) workloadOfDisplay(key string) string {
	if t, ok := s.reg.ByDisplay(key); ok {
		return s.reg.Spec(t).Workload
	}
	return ""
}

// typeLabel is the Prometheus label set for a per-type stats key
// (workload + type).
func (s *CohortServer) typeLabel(key string) string {
	if t, ok := s.reg.ByDisplay(key); ok {
		return s.labels[t]
	}
	return obs.Label("type", key)
}

// metricsResponse renders the Prometheus /metrics document. Loop-owned
// counters come through the Stats() snapshot (taken on the loop
// goroutine); histograms and the launch profile are atomic/locked and
// read directly.
func (s *CohortServer) metricsResponse() []byte {
	st := s.Stats()
	w := obs.NewPromWriter()
	w.Family("rhythm_build_info", "gauge", "Serving mode of this rhythmd process.")
	w.Value("rhythm_build_info", obs.Label("mode", "cohort"), 1)
	w.Family("rhythm_requests_served_total", "counter", "Responses produced, including errors and sheds.")
	w.Value("rhythm_requests_served_total", "", float64(st.Served))
	names := sortedTypeKeys(st.Types)
	w.Family("rhythm_requests_total", "counter", "Requests executed through the cohort pipeline, by workload and type.")
	for _, name := range names {
		w.Value("rhythm_requests_total", s.typeLabel(name), float64(st.Types[name].Requests))
	}
	w.Family("rhythm_cohorts_total", "counter", "Cohorts launched, by workload, type, and formation result.")
	for _, name := range names {
		w.Value("rhythm_cohorts_total", s.typeLabel(name)+`,result="filled"`, float64(st.Types[name].Filled))
		w.Value("rhythm_cohorts_total", s.typeLabel(name)+`,result="timeout"`, float64(st.Types[name].TimedOut))
		w.Value("rhythm_cohorts_total", s.typeLabel(name)+`,result="early"`, float64(st.Types[name].Early))
	}
	w.Family("rhythm_requests_batched_total", "counter", "Requests that rode a cohort launch.")
	w.Value("rhythm_requests_batched_total", "", float64(st.RequestsBatched))
	w.Family("rhythm_http_errors_total", "counter", "Error responses by status code (503 = shed, 504 = deadline miss).")
	w.Value("rhythm_http_errors_total", obs.Label("code", "400"), float64(st.ParseErrors))
	w.Value("rhythm_http_errors_total", obs.Label("code", "404"), float64(st.NotFound))
	w.Value("rhythm_http_errors_total", obs.Label("code", "503"), float64(st.RejectedQueue+st.RejectedPool))
	w.Value("rhythm_http_errors_total", obs.Label("code", "504"), float64(st.DeadlineMisses))
	w.Family("rhythm_images_total", "counter", "Static image responses.")
	w.Value("rhythm_images_total", "", float64(st.Images))
	w.Family("rhythm_kernel_errors_total", "counter", "Requests whose kernel execution reported an error.")
	w.Value("rhythm_kernel_errors_total", "", float64(st.KernelErrors))
	writeLatencyFamilies(w, s.labels, s.latHist)
	w.Family("rhythm_formation_wait_seconds", "histogram", "Admission-to-launch wait (the Fig. 4 formation delay).")
	w.Histogram("rhythm_formation_wait_seconds", "", s.formHist.Snapshot(), 1e-9)
	w.Family("rhythm_cohort_occupancy", "histogram", "Requests per launched cohort.")
	w.Histogram("rhythm_cohort_occupancy", "", s.occupHist.Snapshot(), 1)
	writeDeviceFamilies(w, st.Device, st.ProfiledLaunches)
	writeClusterFamilies(w, st)
	writeFabricFamilies(w, st)
	writeAdaptFamilies(w, st)
	if s.cache != nil {
		writeRenderCacheFamilies(w, s.cache.Stats())
	}
	w.Family("rhythm_traces_recorded_total", "counter", "Request traces captured by the lifecycle recorder.")
	w.Value("rhythm_traces_recorded_total", "", float64(s.tracer.Total()))
	writeFlightFamilies(w, s.flight)
	return bodyResponse(promContentType, w.Bytes())
}

// traceResponse renders the Chrome trace-event document for
// /rhythm-trace, optionally blocking for a ?secs=N capture window.
func (s *CohortServer) traceResponse(req *httpx.Request) []byte {
	secs, ok := captureSecs(req)
	if !ok {
		return errorResponse(400, "Bad Request")
	}
	var since time.Time
	var launches []simt.LaunchRecord
	wait := secs > 0
	if wait {
		// One blocking capture at a time: each holds its connection's
		// handler goroutine for secs seconds, so unbounded concurrent
		// captures would pile up goroutines (DESIGN.md §15).
		if !s.captureBusy.CompareAndSwap(false, true) {
			return tooManyCapturesResponse()
		}
		defer s.captureBusy.Store(false)
		since = time.Now()
		// Launch sequence numbers are per device, so the capture floor
		// is too: each node cluster filters its rings before the fabric
		// merges them (empty with remote workers — their rings live in
		// the worker process).
		floors := s.fab.LaunchFloors()
		time.Sleep(time.Duration(secs) * time.Second)
		launches = s.fab.ProfilesSince(floors)
	} else {
		launches = s.fab.Profiles()
	}
	body := traceDocument(s.tracer, since, wait, launches, 0)
	return bodyResponse("application/json", body)
}

// jsonResponse renders v as a keep-alive application/json response.
func jsonResponse(v any) []byte {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return errorResponse(500, "Internal Server Error")
	}
	body = append(body, '\n')
	buf := make([]byte, len(body)+256)
	w := httpx.NewResponseWriter(buf)
	w.StartOK("application/json", "")
	w.Write(body)
	return w.Finish()
}

// busyResponse is the backpressure answer: 503 with a Retry-After hint.
// Hand-built because ResponseWriter has no custom-header hook and the
// standard error path closes the connection — load shedding should keep
// it open so clients can retry on the same socket.
func busyResponse(retryAfter time.Duration) []byte {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	body := "503 cohort pool saturated\n"
	return []byte(fmt.Sprintf("HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nRetry-After: %d\r\nConnection: keep-alive\r\nContent-Length: %d\r\n\r\n%s",
		secs, len(body), body))
}
