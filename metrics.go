package rhythm

import (
	"bytes"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"rhythm/internal/flight"
	"rhythm/internal/httpx"
	"rhythm/internal/obs"
	"rhythm/internal/obs/health"
	"rhythm/internal/rcache"
	"rhythm/internal/service"
	"rhythm/internal/simt"
	"rhythm/internal/stats"
	"rhythm/internal/workloads"
)

// StatsSchemaVersion is the "schema_version" both stats documents carry.
// Version 2 added the versioned /v1 control-plane paths, the adaptive
// controller section ("adapt"), host-fallback counters, and per-type
// early-launch counts (DESIGN.md §12). Version 3 added the flight
// recorder counters and the /v1/debug/flight and /v1/health endpoints
// (DESIGN.md §15). Version 4 namespaces the per-type stats by workload
// (DESIGN.md §16): the documents gain a "workloads" list, per-type
// sections gain a "workload" field, and per-type Prometheus families
// carry a `workload` label. Banking's type labels stay bare ("login",
// not "banking/login") as the legacy aliases, so every version-3
// dashboard keeps working against a banking-only or default registry.
// Version 5 adds the device-fabric topology (DESIGN.md §17): a
// "transport" kind, per-node "nodes" rows, node failover / link
// saturation counters, per-workload "workload_sheds", and the
// /v1/topology endpoint. `?schema=4` on /v1/stats renders the legacy
// document for version-4 readers.
const StatsSchemaVersion = 5

// DefaultRegistry builds the process-default workload registry: banking
// (bare legacy labels), then e-commerce, then streaming telemetry.
// Servers built without an explicit registry use this one.
func DefaultRegistry() *service.Registry { return workloads.Default() }

// The versioned control-plane paths. The unversioned legacy paths
// (/rhythm-stats, /metrics, /rhythm-trace) remain as aliases.
const (
	StatsPathV1   = "/v1/stats"
	MetricsPathV1 = "/v1/metrics"
	TracePathV1   = "/v1/trace"
	// FlightPathV1 exports the flight recorder's anomaly ring
	// (DESIGN.md §15): JSON by default, ?format=chrome for a
	// Perfetto-loadable trace of the anomalies, ?n=K for the last K.
	FlightPathV1 = "/v1/debug/flight"
	// HealthPathV1 reports the SLO burn-rate health verdict.
	HealthPathV1 = "/v1/health"
	// TopologyPathV1 reports the device fabric's node-level view:
	// transport kind, per-node health and routed groups, dispatch
	// counters, link budgets and saturation sheds (DESIGN.md §17).
	TopologyPathV1 = "/v1/topology"
)

// MetricsPath is the Prometheus text-format endpoint both TCP servers
// expose (DESIGN.md §10). Alias of MetricsPathV1.
const MetricsPath = "/metrics"

// TracePath is the Chrome trace-event capture endpoint both TCP servers
// expose. A bare GET returns the buffered request traces; ?secs=N (1-60)
// records for N seconds and returns only that window. The document loads
// directly in Perfetto / chrome://tracing.
const TracePath = "/rhythm-trace"

// maxTraceCaptureSecs bounds the blocking capture window.
const maxTraceCaptureSecs = 60

// defaultHealthSLO classifies "good" requests for /v1/health when the
// server runs without an explicit SLO target.
const defaultHealthSLO = 250 * time.Millisecond

// tooManyCapturesResponse answers a ?secs=N capture that raced another
// in-flight capture window: 429, keep-alive, so the client can retry
// once the running capture drains (DESIGN.md §15).
func tooManyCapturesResponse() []byte {
	body := "429 a capture window is already running\n"
	return []byte("HTTP/1.1 429 Too Many Requests\r\nContent-Type: text/plain\r\nRetry-After: 1\r\nConnection: keep-alive\r\nContent-Length: " +
		strconv.Itoa(len(body)) + "\r\n\r\n" + body)
}

// spliceTraceHeader rebuilds resp with an "X-Rhythm-Trace: <id>" header
// inserted after the status line, assembling into buf (reused across a
// connection's requests, so the steady state allocates nothing). The
// header is added at write time, never into rendered or cached bytes,
// keeping the host and cohort response bodies byte-identical.
func spliceTraceHeader(buf, resp []byte, id uint64) []byte {
	i := bytes.IndexByte(resp, '\n')
	if i < 0 {
		return append(buf[:0], resp...)
	}
	buf = append(buf[:0], resp[:i+1]...)
	buf = append(buf, "X-Rhythm-Trace: "...)
	buf = strconv.AppendUint(buf, id, 10)
	buf = append(buf, '\r', '\n')
	return append(buf, resp[i+1:]...)
}

// flightResponse renders the /v1/debug/flight document for either
// serving mode. The endpoint is snapshot-only — it never blocks or
// resets the ring, so concurrent reads need no capture guard.
func flightResponse(req *httpx.Request, rec *flight.Recorder) []byte {
	n := 0
	if v := req.Param("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			return errorResponse(400, "Bad Request")
		}
		n = parsed
	}
	snap := rec.Snapshot(n)
	switch req.Param("format") {
	case "", "json":
		return bodyResponse("application/json", snap.JSON())
	case "chrome":
		return bodyResponse("application/json", snap.Chrome())
	}
	return errorResponse(400, "Bad Request")
}

// healthExemplar is one anomaly pointer in the /v1/health document —
// enough to jump straight to the flight record.
type healthExemplar struct {
	TraceID   uint64  `json:"trace_id"`
	Type      string  `json:"type"`
	Reason    string  `json:"reason"`
	LatencyUs float64 `json:"latency_us"`
	Device    int     `json:"device"`
}

// healthDocument is the /v1/health payload: the burn-rate report plus
// the most recent flight anomalies as jump-off exemplars.
type healthDocument struct {
	health.Report
	SchemaVersion   int              `json:"schema_version"`
	FlightAnomalies uint64           `json:"flight_anomalies"`
	Exemplars       []healthExemplar `json:"exemplars"`
}

// healthResponse evaluates the burn-rate engine and joins in the top
// flight exemplars (newest first).
func healthResponse(eng *health.Engine, rec *flight.Recorder) []byte {
	doc := healthDocument{
		Report:        eng.Evaluate(),
		SchemaVersion: StatsSchemaVersion,
	}
	snap := rec.Snapshot(5)
	doc.FlightAnomalies = snap.Promoted
	doc.Exemplars = make([]healthExemplar, 0, len(snap.Records))
	for i := len(snap.Records) - 1; i >= 0; i-- {
		r := snap.Records[i]
		doc.Exemplars = append(doc.Exemplars, healthExemplar{
			TraceID:   r.TraceID,
			Type:      r.Type,
			Reason:    r.Reason.String(),
			LatencyUs: float64(r.Latency) / 1e3,
			Device:    r.Device,
		})
	}
	return jsonResponse(doc)
}

// sloCounts builds the health engine's cumulative per-type good/total
// counts: good = latency observations at or under the SLO (whole-bucket
// resolution, conservative), total = all observations plus the bad
// events that never reach the latency histograms (sheds, deadline
// misses, kernel errors). extraBad may be nil (host mode).
func sloCounts(names []string, hists []*stats.Histogram, sloNs float64, extraBad []atomic.Uint64) map[string]health.Counts {
	out := make(map[string]health.Counts, len(hists))
	for i, h := range hists {
		c := health.Counts{Good: h.CountAtOrBelow(sloNs), Total: h.Count()}
		if extraBad != nil {
			c.Total += extraBad[i].Load()
		}
		if c.Total > 0 {
			out[names[i]] = c
		}
	}
	return out
}

// bodyResponse wraps a prebuilt body in a 200 keep-alive response.
func bodyResponse(contentType string, body []byte) []byte {
	buf := make([]byte, len(body)+256)
	w := httpx.NewResponseWriter(buf)
	w.StartOK(contentType, "")
	w.Write(body)
	return w.Finish()
}

// promContentType is the Prometheus text exposition format version both
// endpoints speak.
const promContentType = "text/plain; version=0.0.4"

// captureSecs parses the optional ?secs=N capture parameter. secs 0
// means "no window — dump the buffered traces"; ok=false means a
// malformed or out-of-range value (the caller answers 400).
func captureSecs(req *httpx.Request) (secs int, ok bool) {
	v := req.Param("secs")
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > maxTraceCaptureSecs {
		return 0, false
	}
	return n, true
}

// traceDocument snapshots tracer (and, when a device is present, its
// launch profile) into Chrome trace-event JSON. When wait is set the
// request track is filtered to traces starting at or after since, and
// launchFloor filters the device track to launches recorded after the
// capture started.
func traceDocument(tracer *obs.Recorder, since time.Time, wait bool, launches []simt.LaunchRecord, launchFloor uint64) []byte {
	var traces []obs.RequestTrace
	if tracer != nil {
		if wait {
			traces = tracer.Since(since)
		} else {
			traces = tracer.Snapshot()
		}
	}
	if launchFloor > 0 {
		kept := launches[:0]
		for _, lr := range launches {
			if lr.Seq > launchFloor {
				kept = append(kept, lr)
			}
		}
		launches = kept
	}
	return obs.ChromeTrace(traces, launches)
}

// stageArgs is the launch-record linkage a stage span carries: enough to
// find the kernel in the device profile (launch_seq) and to explain its
// cost without leaving the trace viewer.
func stageArgs(st simt.LaunchStats) map[string]any {
	return map[string]any{
		"kernel":             st.Kernel,
		"launch_seq":         st.Seq,
		"cohort":             st.Threads,
		"device_us":          float64(st.Duration) / 1e3,
		"issue_cycles":       st.IssueCycles,
		"divergent_execs":    st.DivergentExec,
		"transactions":       st.Transactions,
		"ideal_transactions": st.IdealTxns,
		"occupancy":          st.Occupancy,
		"energy_j":           st.EnergyJ,
	}
}

// typeLabelSets precomputes the per-type Prometheus label set
// (`workload="w",type="display"`) indexed by TypeID.
func typeLabelSets(reg *service.Registry) []string {
	specs := reg.Specs()
	out := make([]string, len(specs))
	for i := range specs {
		out[i] = obs.Label("workload", specs[i].Workload) + "," + obs.Label("type", specs[i].Display)
	}
	return out
}

// workloadNames lists the registered workload names in registration
// order (the stats documents' "workloads" section).
func workloadNames(reg *service.Registry) []string {
	ws := reg.Workloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name()
	}
	return out
}

// sortedTypeKeys returns the per-type stat keys in stable label order.
func sortedTypeKeys(m map[string]CohortTypeStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// newLatencyHistograms builds one request-latency histogram per banking
// request type (atomic: recorded on serving paths, scraped from any
// goroutine).
func newLatencyHistograms(n int) []*stats.Histogram {
	out := make([]*stats.Histogram, n)
	for i := range out {
		out[i] = stats.NewHistogram(stats.LatencyBucketsNs())
	}
	return out
}

// writeLatencyFamilies emits the per-type request latency histograms
// (seconds) for every type that has observations, then the exemplar
// family linking each populated bucket to its latest trace ID — the
// metric→trace join /v1/debug/flight resolves (DESIGN.md §15). labels
// carries each type's full label set (workload + type). The exemplars
// are a separate plain family (not OpenMetrics `# {...}` suffixes) so
// every line stays `name{labels} value` parseable.
func writeLatencyFamilies(w *obs.PromWriter, labels []string, hists []*stats.Histogram) {
	snaps := make([]stats.HistogramSnapshot, len(hists))
	for i, h := range hists {
		snaps[i] = h.Snapshot()
	}
	w.Family("rhythm_request_latency_seconds", "histogram",
		"End-to-end request latency by workload and request type.")
	for i := range snaps {
		if snaps[i].Count == 0 {
			continue
		}
		w.Histogram("rhythm_request_latency_seconds", labels[i], snaps[i], 1e-9)
	}
	w.Family("rhythm_request_latency_exemplar_trace_id", "gauge",
		"Trace ID of the latest observation per latency bucket (0 = none yet); join against /v1/debug/flight.")
	for i := range snaps {
		s := &snaps[i]
		if s.Count == 0 {
			continue
		}
		// Every bucket of an active type is emitted, zero or not, so the
		// scrape's row count depends only on which types saw traffic (the
		// alloc gate needs a deterministic document shape).
		for j, id := range s.Exemplars {
			le := "+Inf"
			if j < len(s.Bounds) {
				le = strconv.FormatFloat(s.Bounds[j]*1e-9, 'g', -1, 64)
			}
			w.Value("rhythm_request_latency_exemplar_trace_id",
				labels[i]+`,le="`+le+`"`, float64(id))
		}
	}
}

// writeFlightFamilies emits the flight recorder's promotion accounting.
func writeFlightFamilies(w *obs.PromWriter, rec *flight.Recorder) {
	snap := rec.Snapshot(0)
	w.Family("rhythm_flight_requests_total", "counter", "Requests finished through the flight recorder.")
	w.Value("rhythm_flight_requests_total", "", float64(snap.Total))
	w.Family("rhythm_flight_anomalies_total", "counter", "Requests promoted into the flight anomaly ring.")
	w.Value("rhythm_flight_anomalies_total", "", float64(snap.Promoted))
	w.Family("rhythm_flight_anomalies_by_reason_total", "counter", "Promoted flight records by promotion reason.")
	reasons := make([]string, 0, len(snap.ByReason))
	for reason := range snap.ByReason {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		w.Value("rhythm_flight_anomalies_by_reason_total", obs.Label("reason", reason), float64(snap.ByReason[reason]))
	}
	w.Family("rhythm_flight_slow_threshold_seconds", "gauge", "Current slow-promotion threshold (adaptive p99 bucket edge unless pinned).")
	w.Value("rhythm_flight_slow_threshold_seconds", "", float64(snap.ThreshNs)/1e9)
}

// writeClusterFamilies emits the device-pool view: per-device gauges
// labeled device="N" plus the cluster-level failover counters
// (DESIGN.md §11).
func writeClusterFamilies(w *obs.PromWriter, st CohortServerStats) {
	if len(st.Devices) == 0 {
		return
	}
	label := func(d int) string { return obs.Label("device", strconv.Itoa(d)) }
	w.Family("rhythm_cluster_device_up", "gauge", "1 when the device is healthy or stalled, 0 once dead.")
	for _, d := range st.Devices {
		up := 1.0
		if d.Health == "dead" {
			up = 0
		}
		w.Value("rhythm_cluster_device_up", label(d.ID), up)
	}
	w.Family("rhythm_cluster_device_queue_len", "gauge", "Dispatched units waiting in the device's bounded queue.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_queue_len", label(d.ID), float64(d.QueueLen))
	}
	w.Family("rhythm_cluster_device_outstanding", "gauge", "Units dispatched to the device and not yet completed.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_outstanding", label(d.ID), float64(d.Outstanding))
	}
	w.Family("rhythm_cluster_device_units_total", "counter", "Cohort units the device completed.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_units_total", label(d.ID), float64(d.UnitsDone))
	}
	w.Family("rhythm_cluster_device_launch_errors_total", "counter", "Injected kernel-launch errors observed on the device.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_launch_errors_total", label(d.ID), float64(d.LaunchErrors))
	}
	w.Family("rhythm_cluster_device_groups", "gauge", "Shard groups the device currently owns.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_groups", label(d.ID), float64(len(d.Groups)))
	}
	w.Family("rhythm_cluster_device_virtual_time_seconds", "gauge", "The device engine's virtual clock.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_virtual_time_seconds", label(d.ID), float64(d.VirtualTimeUs)/1e6)
	}
	w.Family("rhythm_cluster_failovers_total", "counter", "Group ownership moves off dead devices.")
	w.Value("rhythm_cluster_failovers_total", "", float64(st.Failovers))
	w.Family("rhythm_cluster_retries_total", "counter", "Unit re-dispatches after device faults.")
	w.Value("rhythm_cluster_retries_total", "", float64(st.DeviceRetries))
	w.Family("rhythm_cluster_shed_cohorts_total", "counter", "Cohorts shed with 503s (queues full or no healthy device).")
	w.Value("rhythm_cluster_shed_cohorts_total", "", float64(st.ShedCohorts))
}

// writeFabricFamilies emits the device-fabric node tier (DESIGN.md
// §17): per-workload shed counters and per-node health, dispatch, and
// link-budget gauges. Nothing node-level is written without node rows
// (a pre-fabric stats document).
func writeFabricFamilies(w *obs.PromWriter, st CohortServerStats) {
	if len(st.WorkloadSheds) > 0 {
		names := make([]string, 0, len(st.WorkloadSheds))
		for name := range st.WorkloadSheds {
			names = append(names, name)
		}
		sort.Strings(names)
		w.Family("rhythm_shed_total", "counter", "Requests shed with 503, by workload (admission quota, queue, pool, link, or node loss).")
		for _, name := range names {
			w.Value("rhythm_shed_total", obs.Label("workload", name), float64(st.WorkloadSheds[name]))
		}
	}
	if len(st.Nodes) == 0 {
		return
	}
	label := func(n int) string { return obs.Label("node", strconv.Itoa(n)) }
	w.Family("rhythm_fabric_node_up", "gauge", "1 while the fabric node is routable, 0 once down.")
	for _, n := range st.Nodes {
		up := 1.0
		if n.Health != "up" {
			up = 0
		}
		w.Value("rhythm_fabric_node_up", label(n.ID), up)
	}
	w.Family("rhythm_fabric_node_groups", "gauge", "Shard groups currently routed to the node.")
	for _, n := range st.Nodes {
		w.Value("rhythm_fabric_node_groups", label(n.ID), float64(len(n.Groups)))
	}
	w.Family("rhythm_fabric_node_dispatched_total", "counter", "Units the node accepted.")
	for _, n := range st.Nodes {
		w.Value("rhythm_fabric_node_dispatched_total", label(n.ID), float64(n.Dispatched))
	}
	w.Family("rhythm_fabric_node_outstanding", "gauge", "Units in flight on the node.")
	for _, n := range st.Nodes {
		w.Value("rhythm_fabric_node_outstanding", label(n.ID), float64(n.Outstanding))
	}
	w.Family("rhythm_fabric_link_sent_bytes_total", "counter", "Bytes charged against the node's link budget.")
	for _, n := range st.Nodes {
		w.Value("rhythm_fabric_link_sent_bytes_total", label(n.ID), float64(n.Link.SentBytes))
	}
	w.Family("rhythm_fabric_link_utilization", "gauge", "Fraction of the node's link budget consumed (0 when unmetered).")
	for _, n := range st.Nodes {
		w.Value("rhythm_fabric_link_utilization", label(n.ID), n.Link.Utilization)
	}
	w.Family("rhythm_fabric_link_sheds_total", "counter", "Units refused by the node's saturated link.")
	for _, n := range st.Nodes {
		w.Value("rhythm_fabric_link_sheds_total", label(n.ID), float64(n.Link.Sheds))
	}
	w.Family("rhythm_fabric_node_failovers_total", "counter", "Nodes marked down and re-routed around.")
	w.Value("rhythm_fabric_node_failovers_total", "", float64(st.NodeFailovers))
	w.Family("rhythm_fabric_node_retries_total", "counter", "Unit re-dispatches after node loss (recorded as hops).")
	w.Value("rhythm_fabric_node_retries_total", "", float64(st.NodeRetries))
	w.Family("rhythm_fabric_lost_units_total", "counter", "Units whose fate a dead connection left unknown (shed, never retried).")
	w.Value("rhythm_fabric_lost_units_total", "", float64(st.LostUnits))
}

// writeAdaptFamilies emits the adaptive-formation controller gauges
// (DESIGN.md §12): per-type window, rate, threshold, and route, plus the
// pool-wide host-fallback counter. Nothing is written when the server
// runs with a fixed formation timeout (st.Adapt == nil).
func writeAdaptFamilies(w *obs.PromWriter, st CohortServerStats) {
	ad := st.Adapt
	if ad == nil {
		return
	}
	w.Family("rhythm_adapt_window_seconds", "gauge", "Current adaptive formation window, by request type.")
	for _, ts := range ad.Types {
		w.Value("rhythm_adapt_window_seconds", obs.Label("type", ts.Type), ts.WindowUs/1e6)
	}
	w.Family("rhythm_adapt_arrival_rate", "gauge", "Smoothed arrival rate in req/s, by request type.")
	for _, ts := range ad.Types {
		w.Value("rhythm_adapt_arrival_rate", obs.Label("type", ts.Type), ts.RateReqS)
	}
	w.Family("rhythm_adapt_early_threshold", "gauge", "Early-launch cohort threshold, by request type.")
	for _, ts := range ad.Types {
		w.Value("rhythm_adapt_early_threshold", obs.Label("type", ts.Type), float64(ts.EarlyThreshold))
	}
	w.Family("rhythm_adapt_host_route", "gauge", "1 while the type routes to the scalar host path (below crossover).")
	for _, ts := range ad.Types {
		v := 0.0
		if ts.HostRoute {
			v = 1
		}
		w.Value("rhythm_adapt_host_route", obs.Label("type", ts.Type), v)
	}
	w.Family("rhythm_adapt_host_fallback_total", "counter", "Requests served through the scalar host fallback path.")
	w.Value("rhythm_adapt_host_fallback_total", "", float64(st.HostFallbacks))
	w.Family("rhythm_adapt_retry_after_seconds", "gauge", "Backlog-derived Retry-After hint on 503 responses.")
	w.Value("rhythm_adapt_retry_after_seconds", "", ad.RetryAfterMs/1e3)
}

// writeDeviceFamilies emits the SIMT device counters the paper's
// figures are built from.
func writeDeviceFamilies(w *obs.PromWriter, ds simt.DeviceStats, profiled uint64) {
	w.Family("rhythm_device_launches_total", "counter", "Kernel launches (including transposes).")
	w.Value("rhythm_device_launches_total", "", float64(ds.Launches))
	w.Family("rhythm_device_issue_cycles_total", "counter", "Warp-instruction issue slots consumed.")
	w.Value("rhythm_device_issue_cycles_total", "", float64(ds.IssueCycles))
	w.Family("rhythm_device_divergent_execs_total", "counter", "Basic-block executions under a partial active mask (divergence serializations).")
	w.Value("rhythm_device_divergent_execs_total", "", float64(ds.DivergentExec))
	w.Family("rhythm_device_block_execs_total", "counter", "Basic-block executions.")
	w.Value("rhythm_device_block_execs_total", "", float64(ds.BlockExecs))
	w.Family("rhythm_device_mem_transactions_total", "counter", "Coalesced global-memory transactions.")
	w.Value("rhythm_device_mem_transactions_total", "", float64(ds.Transactions))
	w.Family("rhythm_device_ideal_mem_transactions_total", "counter", "Perfectly-coalesced transaction floor for the same requested bytes.")
	w.Value("rhythm_device_ideal_mem_transactions_total", "", float64(ds.IdealTxns))
	w.Family("rhythm_device_mem_bytes_total", "counter", "Global-memory traffic in bytes.")
	w.Value("rhythm_device_mem_bytes_total", "", float64(ds.MemBytes))
	w.Family("rhythm_device_energy_joules_total", "counter", "Modeled dynamic energy of all launches.")
	w.Value("rhythm_device_energy_joules_total", "", ds.EnergyJ)
	w.Family("rhythm_device_busy_seconds_total", "counter", "Virtual device time spent executing.")
	w.Value("rhythm_device_busy_seconds_total", "", float64(ds.BusyTime)/1e9)
	w.Family("rhythm_device_profiled_launches_total", "counter", "Launches recorded by the profiler ring (0 when profiling is off).")
	w.Value("rhythm_device_profiled_launches_total", "", float64(profiled))
}

// writeRenderCacheFamilies emits the whole-page render-cache counters
// (both serving modes, only when the cache is enabled).
func writeRenderCacheFamilies(w *obs.PromWriter, cs rcache.Stats) {
	w.Family("rhythm_render_cache_hits_total", "counter", "Requests answered from the render cache (no execution or kernel launch).")
	w.Value("rhythm_render_cache_hits_total", "", float64(cs.Hits))
	w.Family("rhythm_render_cache_misses_total", "counter", "Cacheable requests that had to execute.")
	w.Value("rhythm_render_cache_misses_total", "", float64(cs.Misses))
	w.Family("rhythm_render_cache_inserts_total", "counter", "Pages inserted into the render cache.")
	w.Value("rhythm_render_cache_inserts_total", "", float64(cs.Inserts))
	w.Family("rhythm_render_cache_invalidations_total", "counter", "User state-version bumps from committed backend writes.")
	w.Value("rhythm_render_cache_invalidations_total", "", float64(cs.Invalidations))
	w.Family("rhythm_render_cache_evictions_total", "counter", "Entries dropped (stale after invalidation, or capacity).")
	w.Value("rhythm_render_cache_evictions_total", "", float64(cs.Evictions))
	w.Family("rhythm_render_cache_entries", "gauge", "Live render-cache entries.")
	w.Value("rhythm_render_cache_entries", "", float64(cs.Entries))
}
