package rhythm

import (
	"sort"
	"strconv"
	"time"

	"rhythm/internal/banking"
	"rhythm/internal/httpx"
	"rhythm/internal/obs"
	"rhythm/internal/rcache"
	"rhythm/internal/simt"
	"rhythm/internal/stats"
)

// StatsSchemaVersion is the "schema_version" both stats documents carry.
// Version 2 added the versioned /v1 control-plane paths, the adaptive
// controller section ("adapt"), host-fallback counters, and per-type
// early-launch counts (DESIGN.md §12).
const StatsSchemaVersion = 2

// The versioned control-plane paths. The unversioned legacy paths
// (/rhythm-stats, /metrics, /rhythm-trace) remain as aliases.
const (
	StatsPathV1   = "/v1/stats"
	MetricsPathV1 = "/v1/metrics"
	TracePathV1   = "/v1/trace"
)

// MetricsPath is the Prometheus text-format endpoint both TCP servers
// expose (DESIGN.md §10). Alias of MetricsPathV1.
const MetricsPath = "/metrics"

// TracePath is the Chrome trace-event capture endpoint both TCP servers
// expose. A bare GET returns the buffered request traces; ?secs=N (1-60)
// records for N seconds and returns only that window. The document loads
// directly in Perfetto / chrome://tracing.
const TracePath = "/rhythm-trace"

// maxTraceCaptureSecs bounds the blocking capture window.
const maxTraceCaptureSecs = 60

// bodyResponse wraps a prebuilt body in a 200 keep-alive response.
func bodyResponse(contentType string, body []byte) []byte {
	buf := make([]byte, len(body)+256)
	w := httpx.NewResponseWriter(buf)
	w.StartOK(contentType, "")
	w.Write(body)
	return w.Finish()
}

// promContentType is the Prometheus text exposition format version both
// endpoints speak.
const promContentType = "text/plain; version=0.0.4"

// captureSecs parses the optional ?secs=N capture parameter. secs 0
// means "no window — dump the buffered traces"; ok=false means a
// malformed or out-of-range value (the caller answers 400).
func captureSecs(req *httpx.Request) (secs int, ok bool) {
	v := req.Param("secs")
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > maxTraceCaptureSecs {
		return 0, false
	}
	return n, true
}

// traceDocument snapshots tracer (and, when a device is present, its
// launch profile) into Chrome trace-event JSON. When wait is set the
// request track is filtered to traces starting at or after since, and
// launchFloor filters the device track to launches recorded after the
// capture started.
func traceDocument(tracer *obs.Recorder, since time.Time, wait bool, launches []simt.LaunchRecord, launchFloor uint64) []byte {
	var traces []obs.RequestTrace
	if tracer != nil {
		if wait {
			traces = tracer.Since(since)
		} else {
			traces = tracer.Snapshot()
		}
	}
	if launchFloor > 0 {
		kept := launches[:0]
		for _, lr := range launches {
			if lr.Seq > launchFloor {
				kept = append(kept, lr)
			}
		}
		launches = kept
	}
	return obs.ChromeTrace(traces, launches)
}

// stageArgs is the launch-record linkage a stage span carries: enough to
// find the kernel in the device profile (launch_seq) and to explain its
// cost without leaving the trace viewer.
func stageArgs(st simt.LaunchStats) map[string]any {
	return map[string]any{
		"kernel":             st.Kernel,
		"launch_seq":         st.Seq,
		"cohort":             st.Threads,
		"device_us":          float64(st.Duration) / 1e3,
		"issue_cycles":       st.IssueCycles,
		"divergent_execs":    st.DivergentExec,
		"transactions":       st.Transactions,
		"ideal_transactions": st.IdealTxns,
		"occupancy":          st.Occupancy,
		"energy_j":           st.EnergyJ,
	}
}

// typeNames returns the banking request-type labels indexed by ReqType.
func typeNames() []string {
	out := make([]string, banking.NumTypes)
	for i := range out {
		out[i] = banking.ReqType(i).String()
	}
	return out
}

// sortedTypeKeys returns the per-type stat keys in stable label order.
func sortedTypeKeys(m map[string]CohortTypeStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// newLatencyHistograms builds one request-latency histogram per banking
// request type (atomic: recorded on serving paths, scraped from any
// goroutine).
func newLatencyHistograms(n int) []*stats.Histogram {
	out := make([]*stats.Histogram, n)
	for i := range out {
		out[i] = stats.NewHistogram(stats.LatencyBucketsNs())
	}
	return out
}

// writeLatencyFamilies emits the per-type request latency histograms
// (seconds) for every type that has observations.
func writeLatencyFamilies(w *obs.PromWriter, names []string, hists []*stats.Histogram) {
	w.Family("rhythm_request_latency_seconds", "histogram",
		"End-to-end request latency by request type.")
	for i, h := range hists {
		if h.Count() == 0 {
			continue
		}
		w.Histogram("rhythm_request_latency_seconds", obs.Label("type", names[i]), h.Snapshot(), 1e-9)
	}
}

// writeClusterFamilies emits the device-pool view: per-device gauges
// labeled device="N" plus the cluster-level failover counters
// (DESIGN.md §11).
func writeClusterFamilies(w *obs.PromWriter, st CohortServerStats) {
	if len(st.Devices) == 0 {
		return
	}
	label := func(d int) string { return obs.Label("device", strconv.Itoa(d)) }
	w.Family("rhythm_cluster_device_up", "gauge", "1 when the device is healthy or stalled, 0 once dead.")
	for _, d := range st.Devices {
		up := 1.0
		if d.Health == "dead" {
			up = 0
		}
		w.Value("rhythm_cluster_device_up", label(d.ID), up)
	}
	w.Family("rhythm_cluster_device_queue_len", "gauge", "Dispatched units waiting in the device's bounded queue.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_queue_len", label(d.ID), float64(d.QueueLen))
	}
	w.Family("rhythm_cluster_device_outstanding", "gauge", "Units dispatched to the device and not yet completed.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_outstanding", label(d.ID), float64(d.Outstanding))
	}
	w.Family("rhythm_cluster_device_units_total", "counter", "Cohort units the device completed.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_units_total", label(d.ID), float64(d.UnitsDone))
	}
	w.Family("rhythm_cluster_device_launch_errors_total", "counter", "Injected kernel-launch errors observed on the device.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_launch_errors_total", label(d.ID), float64(d.LaunchErrors))
	}
	w.Family("rhythm_cluster_device_groups", "gauge", "Shard groups the device currently owns.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_groups", label(d.ID), float64(len(d.Groups)))
	}
	w.Family("rhythm_cluster_device_virtual_time_seconds", "gauge", "The device engine's virtual clock.")
	for _, d := range st.Devices {
		w.Value("rhythm_cluster_device_virtual_time_seconds", label(d.ID), float64(d.VirtualTimeUs)/1e6)
	}
	w.Family("rhythm_cluster_failovers_total", "counter", "Group ownership moves off dead devices.")
	w.Value("rhythm_cluster_failovers_total", "", float64(st.Failovers))
	w.Family("rhythm_cluster_retries_total", "counter", "Unit re-dispatches after device faults.")
	w.Value("rhythm_cluster_retries_total", "", float64(st.DeviceRetries))
	w.Family("rhythm_cluster_shed_cohorts_total", "counter", "Cohorts shed with 503s (queues full or no healthy device).")
	w.Value("rhythm_cluster_shed_cohorts_total", "", float64(st.ShedCohorts))
}

// writeAdaptFamilies emits the adaptive-formation controller gauges
// (DESIGN.md §12): per-type window, rate, threshold, and route, plus the
// pool-wide host-fallback counter. Nothing is written when the server
// runs with a fixed formation timeout (st.Adapt == nil).
func writeAdaptFamilies(w *obs.PromWriter, st CohortServerStats) {
	ad := st.Adapt
	if ad == nil {
		return
	}
	w.Family("rhythm_adapt_window_seconds", "gauge", "Current adaptive formation window, by request type.")
	for _, ts := range ad.Types {
		w.Value("rhythm_adapt_window_seconds", obs.Label("type", ts.Type), ts.WindowUs/1e6)
	}
	w.Family("rhythm_adapt_arrival_rate", "gauge", "Smoothed arrival rate in req/s, by request type.")
	for _, ts := range ad.Types {
		w.Value("rhythm_adapt_arrival_rate", obs.Label("type", ts.Type), ts.RateReqS)
	}
	w.Family("rhythm_adapt_early_threshold", "gauge", "Early-launch cohort threshold, by request type.")
	for _, ts := range ad.Types {
		w.Value("rhythm_adapt_early_threshold", obs.Label("type", ts.Type), float64(ts.EarlyThreshold))
	}
	w.Family("rhythm_adapt_host_route", "gauge", "1 while the type routes to the scalar host path (below crossover).")
	for _, ts := range ad.Types {
		v := 0.0
		if ts.HostRoute {
			v = 1
		}
		w.Value("rhythm_adapt_host_route", obs.Label("type", ts.Type), v)
	}
	w.Family("rhythm_adapt_host_fallback_total", "counter", "Requests served through the scalar host fallback path.")
	w.Value("rhythm_adapt_host_fallback_total", "", float64(st.HostFallbacks))
	w.Family("rhythm_adapt_retry_after_seconds", "gauge", "Backlog-derived Retry-After hint on 503 responses.")
	w.Value("rhythm_adapt_retry_after_seconds", "", ad.RetryAfterMs/1e3)
}

// writeDeviceFamilies emits the SIMT device counters the paper's
// figures are built from.
func writeDeviceFamilies(w *obs.PromWriter, ds simt.DeviceStats, profiled uint64) {
	w.Family("rhythm_device_launches_total", "counter", "Kernel launches (including transposes).")
	w.Value("rhythm_device_launches_total", "", float64(ds.Launches))
	w.Family("rhythm_device_issue_cycles_total", "counter", "Warp-instruction issue slots consumed.")
	w.Value("rhythm_device_issue_cycles_total", "", float64(ds.IssueCycles))
	w.Family("rhythm_device_divergent_execs_total", "counter", "Basic-block executions under a partial active mask (divergence serializations).")
	w.Value("rhythm_device_divergent_execs_total", "", float64(ds.DivergentExec))
	w.Family("rhythm_device_block_execs_total", "counter", "Basic-block executions.")
	w.Value("rhythm_device_block_execs_total", "", float64(ds.BlockExecs))
	w.Family("rhythm_device_mem_transactions_total", "counter", "Coalesced global-memory transactions.")
	w.Value("rhythm_device_mem_transactions_total", "", float64(ds.Transactions))
	w.Family("rhythm_device_ideal_mem_transactions_total", "counter", "Perfectly-coalesced transaction floor for the same requested bytes.")
	w.Value("rhythm_device_ideal_mem_transactions_total", "", float64(ds.IdealTxns))
	w.Family("rhythm_device_mem_bytes_total", "counter", "Global-memory traffic in bytes.")
	w.Value("rhythm_device_mem_bytes_total", "", float64(ds.MemBytes))
	w.Family("rhythm_device_energy_joules_total", "counter", "Modeled dynamic energy of all launches.")
	w.Value("rhythm_device_energy_joules_total", "", ds.EnergyJ)
	w.Family("rhythm_device_busy_seconds_total", "counter", "Virtual device time spent executing.")
	w.Value("rhythm_device_busy_seconds_total", "", float64(ds.BusyTime)/1e9)
	w.Family("rhythm_device_profiled_launches_total", "counter", "Launches recorded by the profiler ring (0 when profiling is off).")
	w.Value("rhythm_device_profiled_launches_total", "", float64(profiled))
}

// writeRenderCacheFamilies emits the whole-page render-cache counters
// (both serving modes, only when the cache is enabled).
func writeRenderCacheFamilies(w *obs.PromWriter, cs rcache.Stats) {
	w.Family("rhythm_render_cache_hits_total", "counter", "Requests answered from the render cache (no execution or kernel launch).")
	w.Value("rhythm_render_cache_hits_total", "", float64(cs.Hits))
	w.Family("rhythm_render_cache_misses_total", "counter", "Cacheable requests that had to execute.")
	w.Value("rhythm_render_cache_misses_total", "", float64(cs.Misses))
	w.Family("rhythm_render_cache_inserts_total", "counter", "Pages inserted into the render cache.")
	w.Value("rhythm_render_cache_inserts_total", "", float64(cs.Inserts))
	w.Family("rhythm_render_cache_invalidations_total", "counter", "User state-version bumps from committed backend writes.")
	w.Value("rhythm_render_cache_invalidations_total", "", float64(cs.Invalidations))
	w.Family("rhythm_render_cache_evictions_total", "counter", "Entries dropped (stale after invalidation, or capacity).")
	w.Value("rhythm_render_cache_evictions_total", "", float64(cs.Evictions))
	w.Family("rhythm_render_cache_entries", "gauge", "Live render-cache entries.")
	w.Value("rhythm_render_cache_entries", "", float64(cs.Entries))
}
