package rhythm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rhythm/internal/backend"
	"rhythm/internal/banking"
	"rhythm/internal/flight"
	"rhythm/internal/httpx"
	"rhythm/internal/obs"
	"rhythm/internal/obs/health"
	"rhythm/internal/rcache"
	"rhythm/internal/service"
	"rhythm/internal/session"
	"rhythm/internal/stats"
)

// TCPServer serves the registered workloads over a real TCP listener
// using the host execution path — the same service code the device
// kernels run, so responses are identical. It exists for end-to-end
// demos (cmd/rhythmd, examples); performance evaluation uses Server.
type TCPServer struct {
	// reg is the workload registry; names its display-label universe,
	// labels the per-type Prometheus label sets. bes holds one backend
	// store per workload (this server is a single shard group); bankIdx
	// is banking's workload index (-1 when banking is not registered),
	// whose requests take the zero-copy arena fast path.
	reg     *service.Registry
	names   []string
	labels  []string
	bes     []service.Backend
	bankIdx int

	// mu guards the workload state (backends + sessions are
	// single-writer by design) and the listener. It is held only across
	// Execute — never across connection I/O — so a slow client can't
	// serialize the server (request parsing and page rendering run
	// lock-free).
	mu       sync.Mutex
	db       *backend.DB // banking's backend store (nil without banking)
	sessions *session.Array
	ln       net.Listener
	served   atomic.Uint64
	errors   atomic.Uint64

	// Observability surfaces (all safe from any goroutine): per-type
	// request counts and latency histograms behind /metrics, and the
	// request-trace ring behind /rhythm-trace.
	typeCounts []atomic.Uint64
	latHist    []*stats.Histogram
	tracer     *obs.Recorder

	// flight is the always-on tail-latency recorder behind
	// /v1/debug/flight, and hEngine the SLO burn-rate engine behind
	// /v1/health (DESIGN.md §15). captureBusy serializes blocking
	// ?secs=N trace captures (concurrent captures answer 429).
	flight      *flight.Recorder
	hEngine     *health.Engine
	captureBusy atomic.Bool

	// cache, when non-nil, is the whole-page render cache; hits bypass
	// the banking lock, execution, and tracing entirely.
	cache *rcache.Cache
}

// EnableRenderCache attaches a whole-page render cache of at most
// entries pages, invalidated by every workload backend's write hook.
// Call before Serve.
func (s *TCPServer) EnableRenderCache(entries int) {
	s.cache = rcache.New(entries)
	for _, be := range s.bes {
		be.SetWriteHook(s.cache.Invalidate)
	}
}

// NewTCPServer builds a TCP server over the default registry with
// capacity for maxSessions live sessions.
func NewTCPServer(maxSessions int) *TCPServer {
	return NewTCPServerFor(DefaultRegistry(), maxSessions)
}

// NewTCPServerFor builds a TCP server serving reg's workloads.
func NewTCPServerFor(reg *service.Registry, maxSessions int) *TCPServer {
	if maxSessions < 256 {
		maxSessions = 256
	}
	s := &TCPServer{
		reg:        reg,
		names:      reg.DisplayNames(),
		labels:     typeLabelSets(reg),
		bes:        reg.NewBackends(),
		bankIdx:    -1,
		sessions:   session.NewArray(256, maxSessions/256*4+4),
		typeCounts: make([]atomic.Uint64, reg.NumTypes()),
		latHist:    newLatencyHistograms(reg.NumTypes()),
		tracer:     obs.NewRecorder(0),
		flight:     flight.New(flight.Config{}),
	}
	for i, w := range reg.Workloads() {
		if w.Name() == "banking" {
			if db, ok := s.bes[i].(*backend.DB); ok {
				s.bankIdx, s.db = i, db
			}
		}
	}
	s.hEngine = s.newHealthEngine(health.Config{})
	return s
}

// ConfigureFlight replaces the flight recorder with one built from cfg.
// Call before Serve.
func (s *TCPServer) ConfigureFlight(cfg flight.Config) { s.flight = flight.New(cfg) }

// ConfigureHealth rebuilds the SLO burn-rate engine from cfg. Call
// before Serve.
func (s *TCPServer) ConfigureHealth(cfg health.Config) { s.hEngine = s.newHealthEngine(cfg) }

// newHealthEngine wires a burn-rate engine to this server's latency
// histograms. Host mode has no shed or deadline paths, so the counts
// are purely latency-classified.
func (s *TCPServer) newHealthEngine(cfg health.Config) *health.Engine {
	if cfg.SLO <= 0 {
		cfg.SLO = defaultHealthSLO
	}
	names := s.names
	sloNs := float64(cfg.SLO)
	return health.New(cfg, func() map[string]health.Counts {
		return sloCounts(names, s.latHist, sloNs, nil)
	})
}

// Seed reports the deterministic banking credentials for userID (every
// profile is synthesized on first touch), so demo clients can log in.
func (s *TCPServer) Seed(userID uint64) (uint64, string) {
	return userID, backend.PasswordFor(userID)
}

// Addr reports the bound address once Listen has been called.
func (s *TCPServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Served reports how many requests have been answered.
func (s *TCPServer) Served() uint64 { return s.served.Load() }

// Errors reports how many answered requests failed (parse errors,
// unknown paths, failed service executions).
func (s *TCPServer) Errors() uint64 { return s.errors.Load() }

// Listen binds the listener without serving (so callers can learn the
// port before Serve blocks).
func (s *TCPServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Serve accepts connections until the listener is closed.
func (s *TCPServer) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("rhythm: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ListenAndServe binds addr and serves until Close.
func (s *TCPServer) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops the listener.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

// connArena holds the per-connection reusable buffers of the zero-copy
// hot path: the raw request bytes, the parsed request (param/cookie
// slices recycled by ParseInto), the banking execution scratch, and a
// max-size render buffer. One arena serves every request on its
// connection, so the steady state allocates nothing but the parse's
// raw-to-string conversion — see DESIGN.md §14.
type connArena struct {
	raw     []byte
	req     httpx.Request
	scratch *banking.Scratch
	out     []byte
	// frec is the connection's flight-record scratch: filled per banking
	// request and either recycled (fast path) or copied into the anomaly
	// ring by Finish (DESIGN.md §15). wbuf is the reusable write buffer
	// the X-Rhythm-Trace header is spliced into, so cached/rendered
	// response bytes are never mutated.
	frec flight.Record
	wbuf []byte
}

// maxOut is the registry's largest response-buffer class, so one buffer
// serves every registered type.
func newConnArena(maxOut int) *connArena {
	return &connArena{
		raw:     make([]byte, 0, 1024),
		scratch: banking.NewScratch(),
		out:     make([]byte, maxOut),
	}
}

// newParseArena builds an arena without the host execution buffers, for
// the cohort server (its handlers only read, parse, and classify —
// execution and rendering happen on the device workers).
func newParseArena() *connArena {
	return &connArena{raw: make([]byte, 0, 1024)}
}

// handle serves one keep-alive connection.
func (s *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	a := newConnArena(s.reg.MaxBufferBytes())
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		raw, err := readRequestInto(r, a.raw[:0])
		a.raw = raw // keep grown capacity for the next request
		if err != nil {
			return
		}
		resp, tr, id := s.respond(a, raw)
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		wstart := time.Now()
		wout := resp
		if id != 0 {
			a.wbuf = spliceTraceHeader(a.wbuf, resp, id)
			wout = a.wbuf
		}
		_, werr := conn.Write(wout)
		if tr != nil {
			tr.Spans = append(tr.Spans, obs.Span{Name: "write", Start: wstart, Dur: time.Since(wstart)})
			s.tracer.Add(*tr)
		}
		if id != 0 {
			if tr != nil {
				a.frec.Spans = tr.Spans
			}
			a.frec.Latency = time.Since(a.frec.Start)
			s.flight.Finish(&a.frec)
		}
		if werr != nil {
			return
		}
	}
}

// respond answers one request using the connection's arena. Only the
// service execution itself takes the server lock; parsing happens
// before it and rendering after (the scratch ctx is private to this
// goroutine once Execute returns). A render-cache hit skips the lock,
// the execution, and tracing entirely — its only allocation is the
// parse's raw-to-string conversion. For executed banking requests it
// also returns the request's lifecycle trace (minus the write span,
// which the caller appends before committing) and the request's flight
// trace ID (non-zero means a.frec is armed and the caller must Finish
// it after the write).
func (s *TCPServer) respond(a *connArena, raw []byte) ([]byte, *obs.RequestTrace, uint64) {
	s.served.Add(1)
	start := time.Now()
	req := &a.req
	if err := httpx.ParseInto(raw, req); err != nil {
		s.errors.Add(1)
		return errorResponse(400, "Bad Request"), nil, 0
	}
	switch req.Path {
	case StatsPath, StatsPathV1:
		return jsonResponse(s.statsDocument()), nil, 0
	case MetricsPath, MetricsPathV1:
		return s.metricsResponse(), nil, 0
	case TracePath, TracePathV1:
		return s.traceResponse(req), nil, 0
	case FlightPathV1:
		return flightResponse(req, s.flight), nil, 0
	case HealthPathV1:
		return healthResponse(s.hEngine, s.flight), nil, 0
	}
	t, ok := s.reg.Classify(req)
	if !ok {
		if resp, ok := s.reg.Static(req.Path); ok {
			return resp, nil, 0
		}
		s.errors.Add(1)
		return errorResponse(404, "Not Found"), nil, 0
	}
	s.typeCounts[t].Add(1)
	id := s.flight.NextID()
	a.frec.Reset()
	a.frec.TraceID = id
	a.frec.Type = s.names[t]
	a.frec.Start = start
	a.frec.HostExec = true
	a.frec.Attempts = 1
	classified := time.Now()

	// Render-cache lookup. The state version is captured BEFORE the
	// execute so a concurrent write can only make the inserted entry
	// unreachable, never stale (DESIGN.md §14). Session resolution here
	// is lock-free: the session array is internally bucket-locked.
	var (
		cacheable  bool
		csid       session.ID
		cuid, cver uint64
	)
	if s.cache != nil && s.reg.Spec(t).Cacheable {
		if sid, ok := session.ParseID(req.Cookie(s.reg.WorkloadOf(t).SessionCookie())); ok {
			if uid, ok := s.sessions.Lookup(sid); ok {
				cacheable, csid, cuid = true, sid, uid
				cver = s.cache.Version(cuid)
				if resp, hit := s.cache.Get(t, csid, cuid, cver, req); hit {
					s.latHist[t].ObserveEx(float64(time.Since(start)), id)
					return resp, nil, id
				}
			}
		}
	}

	// Banking requests run the zero-copy arena fast path (scratch ctx +
	// reused render buffer); other workloads execute through the
	// registry's scalar host surface, which allocates its response.
	var (
		resp     []byte
		failed   bool
		executed time.Time
	)
	if widx := s.reg.WorkloadIndex(t); widx == s.bankIdx {
		bt := banking.ReqType(s.reg.Spec(t).Local)
		s.mu.Lock()
		ctx := a.scratch.Execute(banking.ServiceFor(bt), req, s.sessions, s.db, true)
		s.mu.Unlock()
		executed = time.Now()
		failed = ctx.Err != ""
		resp = banking.Render(ctx, a.out[:ctx.Spec.BufferBytes()])
	} else {
		s.mu.Lock()
		resp, failed = s.reg.ExecuteHost(t, req, s.sessions, s.bes)
		s.mu.Unlock()
		executed = time.Now()
	}
	if failed {
		s.errors.Add(1)
		a.frec.Status = flight.StatusError
	}
	rendered := time.Now()
	if cacheable && !failed {
		s.cache.Put(t, csid, cuid, cver, req, resp)
	}
	s.latHist[t].ObserveEx(float64(rendered.Sub(start)), id)
	return resp, &obs.RequestTrace{
		Type: s.names[t],
		Spans: []obs.Span{
			{Name: "classify", Start: start, Dur: classified.Sub(start)},
			{Name: "execute", Start: classified, Dur: executed.Sub(classified)},
			{Name: "render", Start: executed, Dur: rendered.Sub(executed)},
		},
	}, id
}

// statsDocument builds the host-mode /v1/stats payload.
func (s *TCPServer) statsDocument() HostStats {
	st := HostStats{
		SchemaVersion:   StatsSchemaVersion,
		Mode:            "host",
		Workloads:       workloadNames(s.reg),
		Served:          s.served.Load(),
		Errors:          s.errors.Load(),
		FlightRequests:  s.flight.Total(),
		FlightAnomalies: s.flight.Promoted(),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheInvalidations = cs.Invalidations
		st.CacheEntries = cs.Entries
	}
	return st
}

// metricsResponse renders the host-mode Prometheus /metrics document.
// Every counter here is atomic, so the scrape is race-free without
// touching the banking lock.
func (s *TCPServer) metricsResponse() []byte {
	w := obs.NewPromWriter()
	w.Family("rhythm_build_info", "gauge", "Serving mode of this rhythmd process.")
	w.Value("rhythm_build_info", obs.Label("mode", "host"), 1)
	w.Family("rhythm_requests_served_total", "counter", "Responses produced, including errors.")
	w.Value("rhythm_requests_served_total", "", float64(s.served.Load()))
	w.Family("rhythm_request_errors_total", "counter", "Requests that failed (parse, unknown path, service error).")
	w.Value("rhythm_request_errors_total", "", float64(s.errors.Load()))
	w.Family("rhythm_requests_total", "counter", "Requests executed on the host path, by workload and type.")
	for i := range s.typeCounts {
		if n := s.typeCounts[i].Load(); n > 0 {
			w.Value("rhythm_requests_total", s.labels[i], float64(n))
		}
	}
	writeLatencyFamilies(w, s.labels, s.latHist)
	if s.cache != nil {
		writeRenderCacheFamilies(w, s.cache.Stats())
	}
	w.Family("rhythm_traces_recorded_total", "counter", "Request traces captured by the lifecycle recorder.")
	w.Value("rhythm_traces_recorded_total", "", float64(s.tracer.Total()))
	writeFlightFamilies(w, s.flight)
	return bodyResponse(promContentType, w.Bytes())
}

// traceResponse renders the Chrome trace-event document for
// /rhythm-trace. Host mode has no device, so the document carries only
// the request track.
func (s *TCPServer) traceResponse(req *httpx.Request) []byte {
	secs, ok := captureSecs(req)
	if !ok {
		return errorResponse(400, "Bad Request")
	}
	var since time.Time
	wait := secs > 0
	if wait {
		// One blocking capture at a time: each holds its connection's
		// handler goroutine for secs seconds, so unbounded concurrent
		// captures would pile up goroutines (DESIGN.md §15).
		if !s.captureBusy.CompareAndSwap(false, true) {
			return tooManyCapturesResponse()
		}
		defer s.captureBusy.Store(false)
		since = time.Now()
		time.Sleep(time.Duration(secs) * time.Second)
	}
	return bodyResponse("application/json", traceDocument(s.tracer, since, wait, nil, 0))
}

// HostStats is the /v1/stats (and legacy /rhythm-stats) document of a
// host-mode server.
type HostStats struct {
	SchemaVersion int    `json:"schema_version"`
	Mode          string `json:"mode"`
	// Workloads lists the registered workload names in registration
	// order (schema_version 4).
	Workloads []string `json:"workloads"`
	Served    uint64   `json:"served"`
	Errors    uint64   `json:"errors"`
	// Render-cache counters (zero when the cache is disabled).
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	CacheEntries       uint64 `json:"cache_entries"`
	// Flight-recorder counters (DESIGN.md §15).
	FlightRequests  uint64 `json:"flight_requests"`
	FlightAnomalies uint64 `json:"flight_anomalies"`
}

func errorResponse(code int, reason string) []byte {
	buf := make([]byte, 512)
	w := httpx.NewResponseWriter(buf)
	w.StartError(code, reason)
	return w.Finish()
}

// readRequestInto reads one HTTP/1.1 request (headers + Content-Length
// body) from r, appending into buf and returning the extended slice.
// It is the arena-backed replacement for the old per-request
// strings.Builder: once a connection's buffer has grown to its working
// size, reading a request performs no allocation (lines are consumed
// via ReadSlice and the Content-Length value is scanned in place).
func readRequestInto(r *bufio.Reader, buf []byte) ([]byte, error) {
	contentLength := 0
	for {
		lineStart := len(buf)
		for {
			frag, err := r.ReadSlice('\n')
			buf = append(buf, frag...)
			if err == nil {
				break
			}
			if err == bufio.ErrBufferFull {
				continue // header line longer than the reader buffer
			}
			return buf, err
		}
		line := buf[lineStart:]
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			break
		}
		if n, ok := contentLengthValue(line); ok {
			if n < 0 || n > 1<<20 {
				return buf, fmt.Errorf("rhythm: bad content length %q", line)
			}
			contentLength = n
		}
	}
	if contentLength > 0 {
		bodyStart := len(buf)
		if cap(buf)-bodyStart < contentLength {
			grown := make([]byte, bodyStart, bodyStart+contentLength)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:bodyStart+contentLength]
		if _, err := io.ReadFull(r, buf[bodyStart:]); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// contentLengthValue matches a Content-Length header line
// case-insensitively and parses its decimal value in place, reporting
// (-1, true) for a malformed value.
func contentLengthValue(line []byte) (int, bool) {
	const name = "content-length:"
	if len(line) < len(name) {
		return 0, false
	}
	for i := 0; i < len(name); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return 0, false
		}
	}
	v := line[len(name):]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	if len(v) == 0 {
		return -1, true
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' || n > (1<<30) {
			return -1, true
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
