package rhythm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rhythm/internal/backend"
	"rhythm/internal/banking"
	"rhythm/internal/httpx"
	"rhythm/internal/obs"
	"rhythm/internal/session"
	"rhythm/internal/stats"
)

// TCPServer serves the SPECWeb Banking workload over a real TCP listener
// using the host execution path — the same service code the device
// kernels run, so responses are identical. It exists for end-to-end
// demos (cmd/rhythmd, examples); performance evaluation uses Server.
type TCPServer struct {
	// mu guards the banking state (db + sessions are single-writer by
	// design) and the listener. It is held only across Execute — never
	// across connection I/O — so a slow client can't serialize the
	// server (request parsing and page rendering run lock-free).
	mu       sync.Mutex
	db       *backend.DB
	sessions *session.Array
	ln       net.Listener
	served   atomic.Uint64
	errors   atomic.Uint64

	// Observability surfaces (all safe from any goroutine): per-type
	// request counts and latency histograms behind /metrics, and the
	// request-trace ring behind /rhythm-trace.
	typeCounts []atomic.Uint64
	latHist    []*stats.Histogram
	tracer     *obs.Recorder
}

// NewTCPServer builds a TCP banking server with capacity for
// maxSessions live sessions.
func NewTCPServer(maxSessions int) *TCPServer {
	if maxSessions < 256 {
		maxSessions = 256
	}
	return &TCPServer{
		db:         backend.New(),
		sessions:   session.NewArray(256, maxSessions/256*4+4),
		typeCounts: make([]atomic.Uint64, banking.NumTypes),
		latHist:    newLatencyHistograms(int(banking.NumTypes)),
		tracer:     obs.NewRecorder(0),
	}
}

// Seed creates a user with a deterministic password and returns
// (userID, password), so demo clients can log in.
func (s *TCPServer) Seed(userID uint64) (uint64, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.db.GetProfile(userID)
	return userID, p.Password
}

// Addr reports the bound address once Listen has been called.
func (s *TCPServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Served reports how many requests have been answered.
func (s *TCPServer) Served() uint64 { return s.served.Load() }

// Errors reports how many answered requests failed (parse errors,
// unknown paths, failed service executions).
func (s *TCPServer) Errors() uint64 { return s.errors.Load() }

// Listen binds the listener without serving (so callers can learn the
// port before Serve blocks).
func (s *TCPServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Serve accepts connections until the listener is closed.
func (s *TCPServer) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("rhythm: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ListenAndServe binds addr and serves until Close.
func (s *TCPServer) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops the listener.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

// handle serves one keep-alive connection.
func (s *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		raw, err := readRequest(r)
		if err != nil {
			return
		}
		resp, tr := s.respond(raw)
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		wstart := time.Now()
		_, werr := conn.Write(resp)
		if tr != nil {
			tr.Spans = append(tr.Spans, obs.Span{Name: "write", Start: wstart, Dur: time.Since(wstart)})
			s.tracer.Add(*tr)
		}
		if werr != nil {
			return
		}
	}
}

// respond answers one request. Only the service execution itself takes
// the server lock; parsing happens before it and rendering after (the
// ctx is private to this goroutine once Execute returns). For banking
// requests it also returns the request's lifecycle trace (minus the
// write span, which the caller appends before committing).
func (s *TCPServer) respond(raw []byte) ([]byte, *obs.RequestTrace) {
	s.served.Add(1)
	start := time.Now()
	req, err := httpx.Parse(raw)
	if err != nil {
		s.errors.Add(1)
		return errorResponse(400, "Bad Request"), nil
	}
	switch req.Path {
	case StatsPath, StatsPathV1:
		return jsonResponse(HostStats{
			SchemaVersion: StatsSchemaVersion,
			Mode:          "host",
			Served:        s.served.Load(),
			Errors:        s.errors.Load(),
		}), nil
	case MetricsPath, MetricsPathV1:
		return s.metricsResponse(), nil
	case TracePath, TracePathV1:
		return s.traceResponse(&req), nil
	}
	t, ok := banking.ByPath(req.Path)
	if !ok {
		if resp, ok := banking.ImageResponse(req.Path); ok {
			return resp, nil
		}
		s.errors.Add(1)
		return errorResponse(404, "Not Found"), nil
	}
	s.typeCounts[t].Add(1)
	classified := time.Now()
	s.mu.Lock()
	ctx := banking.Execute(banking.ServiceFor(t), &req, s.sessions, s.db, true)
	s.mu.Unlock()
	executed := time.Now()
	if ctx.Err != "" {
		s.errors.Add(1)
	}
	resp := banking.RenderAlloc(ctx)
	rendered := time.Now()
	s.latHist[t].Observe(float64(rendered.Sub(start)))
	return resp, &obs.RequestTrace{
		Type: t.String(),
		Spans: []obs.Span{
			{Name: "classify", Start: start, Dur: classified.Sub(start)},
			{Name: "execute", Start: classified, Dur: executed.Sub(classified)},
			{Name: "render", Start: executed, Dur: rendered.Sub(executed)},
		},
	}
}

// metricsResponse renders the host-mode Prometheus /metrics document.
// Every counter here is atomic, so the scrape is race-free without
// touching the banking lock.
func (s *TCPServer) metricsResponse() []byte {
	w := obs.NewPromWriter()
	w.Family("rhythm_build_info", "gauge", "Serving mode of this rhythmd process.")
	w.Value("rhythm_build_info", obs.Label("mode", "host"), 1)
	w.Family("rhythm_requests_served_total", "counter", "Responses produced, including errors.")
	w.Value("rhythm_requests_served_total", "", float64(s.served.Load()))
	w.Family("rhythm_request_errors_total", "counter", "Requests that failed (parse, unknown path, service error).")
	w.Value("rhythm_request_errors_total", "", float64(s.errors.Load()))
	names := typeNames()
	w.Family("rhythm_requests_total", "counter", "Requests executed on the host path, by type.")
	for i := range s.typeCounts {
		if n := s.typeCounts[i].Load(); n > 0 {
			w.Value("rhythm_requests_total", obs.Label("type", names[i]), float64(n))
		}
	}
	writeLatencyFamilies(w, names, s.latHist)
	w.Family("rhythm_traces_recorded_total", "counter", "Request traces captured by the lifecycle recorder.")
	w.Value("rhythm_traces_recorded_total", "", float64(s.tracer.Total()))
	return bodyResponse(promContentType, w.Bytes())
}

// traceResponse renders the Chrome trace-event document for
// /rhythm-trace. Host mode has no device, so the document carries only
// the request track.
func (s *TCPServer) traceResponse(req *httpx.Request) []byte {
	secs, ok := captureSecs(req)
	if !ok {
		return errorResponse(400, "Bad Request")
	}
	var since time.Time
	wait := secs > 0
	if wait {
		since = time.Now()
		time.Sleep(time.Duration(secs) * time.Second)
	}
	return bodyResponse("application/json", traceDocument(s.tracer, since, wait, nil, 0))
}

// HostStats is the /v1/stats (and legacy /rhythm-stats) document of a
// host-mode server.
type HostStats struct {
	SchemaVersion int    `json:"schema_version"`
	Mode          string `json:"mode"`
	Served        uint64 `json:"served"`
	Errors        uint64 `json:"errors"`
}

func errorResponse(code int, reason string) []byte {
	buf := make([]byte, 512)
	w := httpx.NewResponseWriter(buf)
	w.StartError(code, reason)
	return w.Finish()
}

// readRequest reads one HTTP/1.1 request (headers + Content-Length body)
// from r.
func readRequest(r *bufio.Reader) ([]byte, error) {
	var raw strings.Builder
	contentLength := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		raw.WriteString(line)
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(trimmed), "content-length:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 0 || n > 1<<20 {
				return nil, fmt.Errorf("rhythm: bad content length %q", v)
			}
			contentLength = n
		}
	}
	if contentLength > 0 {
		body := make([]byte, contentLength)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		raw.Write(body)
	}
	return []byte(raw.String()), nil
}
